/**
 * @file
 * Spatial variation analyses of §7: per-row HCfirst distributions
 * (Fig. 11), per-column flip counts and their design/process variation
 * (Figs. 12-13), and subarray statistics (Figs. 14-15).
 *
 * All §7 experiments run at 75 degC.
 */

#ifndef RHS_CORE_SPATIAL_HH
#define RHS_CORE_SPATIAL_HH

#include <cstdint>
#include <vector>

#include "core/tester.hh"
#include "stats/regression.hh"

namespace rhs::core
{

/** Conditions used for all §7 spatial experiments. */
rhmodel::Conditions spatialConditions();

/**
 * Per-row HCfirst survey (Fig. 11): the minimum HCfirst across 5
 * repetitions for each vulnerable row, unsorted.
 */
std::vector<double>
rowHcFirstSurvey(const Tester &tester, unsigned bank,
                 const std::vector<unsigned> &rows,
                 const rhmodel::DataPattern &pattern);

/** Summary of the Fig. 11 distribution (Obsv. 12). */
struct RowVariationSummary
{
    double minHcFirst = 0.0;
    //! HCfirst at percentile P (of rows sorted by increasing HCfirst)
    //! divided by the most vulnerable row's HCfirst.
    double p1Ratio = 0.0;  //!< 99% of rows are above this.
    double p5Ratio = 0.0;  //!< 95% of rows are above this.
    double p10Ratio = 0.0; //!< 90% of rows are above this.
};

RowVariationSummary summarizeRowVariation(const std::vector<double> &hcs);

/** Per-chip, per-column bit flip counts (Fig. 12). */
struct ColumnFlipCounts
{
    //! counts[chip][column] accumulated over all tested rows.
    std::vector<std::vector<std::uint64_t>> counts;

    /** Fraction of (chip, column) slots with zero flips (Obsv. 13). */
    double zeroFraction() const;

    /** Fraction of slots with more than `threshold` flips. */
    double overFraction(std::uint64_t threshold = 100) const;

    /** Minimum flips over all columns of one chip. */
    std::uint64_t chipMinimum(unsigned chip) const;
};

ColumnFlipCounts
columnFlipSurvey(const Tester &tester, unsigned bank,
                 const std::vector<unsigned> &rows,
                 const rhmodel::DataPattern &pattern,
                 std::uint64_t hammers = kBerHammers);

/**
 * Column variation clustering (Fig. 13): for every column address,
 * the relative RowHammer vulnerability (column BER normalized to the
 * module's maximum column BER) and the coefficient of variation of
 * that relative vulnerability across chips.
 */
struct ColumnVariation
{
    std::vector<double> relativeVulnerability; //!< Per column, in [0,1].
    std::vector<double> cvAcrossChips; //!< Per column, saturated at 1.
    //! Sampling-noise-corrected CV: the flip counts of a column are
    //! Poisson samples of the per-chip rates, so the observed
    //! cross-chip variance contains a noise floor equal to the mean
    //! count. cvExcess removes it: sqrt(max(0, var - mean)) / mean.
    //! A design-induced column (identical rate on every chip) has
    //! cvExcess ~ 0 at any sample size.
    std::vector<double> cvExcessAcrossChips;

    /** Fraction of vulnerable columns with noise-corrected CV below
     *  `eps` (design-induced variation, Obsv. 14). */
    double designConsistentFraction(double eps = 0.045) const;

    /** Fraction of vulnerable columns with saturated noise-corrected
     *  CV (manufacturing-process variation). */
    double processDominatedFraction(double threshold = 0.955) const;
};

ColumnVariation analyzeColumnVariation(const ColumnFlipCounts &counts);

/** Per-subarray HCfirst statistics (Figs. 14-15). */
struct SubarrayStats
{
    unsigned subarray = 0;
    double averageHcFirst = 0.0;
    double minimumHcFirst = 0.0;
    std::vector<double> hcFirstValues; //!< Per sampled row.
};

/**
 * Survey a sample of subarrays (Fig. 14).
 *
 * @param subarray_count Number of subarrays to sample (spread evenly).
 * @param rows_per_subarray Rows sampled inside each subarray.
 */
std::vector<SubarrayStats>
subarraySurvey(const Tester &tester, unsigned bank,
               unsigned subarray_count, unsigned rows_per_subarray,
               const rhmodel::DataPattern &pattern);

/**
 * Fit the Fig. 14 linear model min-HCfirst = a * avg-HCfirst + b over
 * a set of subarray statistics (possibly from several modules).
 */
stats::LinearFit fitSubarrayModel(const std::vector<SubarrayStats> &stats);

} // namespace rhs::core

#endif // RHS_CORE_SPATIAL_HH

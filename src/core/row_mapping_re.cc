#include "core/row_mapping_re.hh"

#include <algorithm>

#include "util/logging.hh"

namespace rhs::core
{

std::vector<InferredAdjacency>
inferAdjacency(const Tester &tester, unsigned bank,
               const std::vector<unsigned> &logical_rows, unsigned window,
               std::uint64_t hammers)
{
    const auto &module = tester.module().module();
    const auto &mapping = module.rowMapping();
    const unsigned rows = module.geometry().rowsPerBank();
    const auto &analytic = tester.module().analytic();

    std::vector<InferredAdjacency> result;
    result.reserve(logical_rows.size());

    for (unsigned logical : logical_rows) {
        InferredAdjacency entry;
        entry.aggressorLogical = logical;

        const unsigned aggr_phys = mapping.toPhysical(logical);
        const auto attack =
            rhmodel::HammerAttack::singleSided(bank, aggr_phys);
        const rhmodel::DataPattern pattern(rhmodel::PatternId::RowStripe);
        rhmodel::Conditions conditions; // Reference conditions.

        // Scan logical rows around the aggressor and count flips in
        // each candidate victim.
        std::vector<std::pair<std::uint64_t, unsigned>> scores;
        const long lo = static_cast<long>(logical) -
                        static_cast<long>(window);
        const long hi = static_cast<long>(logical) +
                        static_cast<long>(window);
        for (long candidate = lo; candidate <= hi; ++candidate) {
            if (candidate < 0 || candidate >= static_cast<long>(rows) ||
                candidate == static_cast<long>(logical)) {
                continue;
            }
            const unsigned cand_logical =
                static_cast<unsigned>(candidate);
            const unsigned cand_phys = mapping.toPhysical(cand_logical);
            const auto flips = analytic
                                   .berTest(cand_phys, attack, conditions,
                                            pattern, hammers, 0)
                                   .flips.size();
            if (flips > 0)
                scores.emplace_back(flips, cand_logical);
        }

        std::sort(scores.begin(), scores.end(),
                  [](const auto &a, const auto &b) {
                      return a.first > b.first;
                  });
        if (!scores.empty())
            entry.victimLow = scores[0].second;
        if (scores.size() > 1)
            entry.victimHigh = scores[1].second;
        if (entry.victimLow && entry.victimHigh &&
            *entry.victimLow > *entry.victimHigh) {
            std::swap(entry.victimLow, entry.victimHigh);
        }
        result.push_back(entry);
    }
    return result;
}

double
adjacencyAccuracy(const Tester &tester,
                  const std::vector<InferredAdjacency> &inferred)
{
    RHS_ASSERT(!inferred.empty());
    const auto &module = tester.module().module();
    const auto &mapping = module.rowMapping();
    const unsigned rows = module.geometry().rowsPerBank();

    unsigned correct = 0;
    for (const auto &entry : inferred) {
        const unsigned phys = mapping.toPhysical(entry.aggressorLogical);
        std::vector<unsigned> expected;
        if (phys >= 1)
            expected.push_back(mapping.toLogical(phys - 1));
        if (phys + 1 < rows)
            expected.push_back(mapping.toLogical(phys + 1));
        std::sort(expected.begin(), expected.end());

        std::vector<unsigned> got;
        if (entry.victimLow)
            got.push_back(*entry.victimLow);
        if (entry.victimHigh)
            got.push_back(*entry.victimHigh);
        std::sort(got.begin(), got.end());

        if (got == expected)
            ++correct;
    }
    return static_cast<double>(correct) /
           static_cast<double>(inferred.size());
}

} // namespace rhs::core

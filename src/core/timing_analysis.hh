/**
 * @file
 * Aggressor-row active-time analyses of §6 (Figs. 7-10).
 *
 * The on-time sweep varies tAggOn from tRAS (34.5 ns) to 154.5 ns in
 * 30 ns steps; the off-time sweep varies tAggOff from tRP (16.5 ns) to
 * 40.5 ns in 8 ns steps. Experiments run at 50 degC on the first,
 * middle, and last rows of a bank.
 */

#ifndef RHS_CORE_TIMING_ANALYSIS_HH
#define RHS_CORE_TIMING_ANALYSIS_HH

#include <cstdint>
#include <vector>

#include "core/tester.hh"

namespace rhs::core
{

/** The paper's tAggOn sweep points (ns). */
std::vector<double> standardOnTimes();

/** The paper's tAggOff sweep points (ns). */
std::vector<double> standardOffTimes();

/** Results at each sweep point. */
struct TimingSweepResult
{
    std::vector<double> values; //!< Sweep points (ns).

    //! Per point: average bit flips per victim row of each chip
    //! (the distribution plotted in Figs. 7 and 9).
    std::vector<std::vector<double>> flipsPerRowPerChip;

    //! Per point: HCfirst of each vulnerable row (Figs. 8 and 10).
    std::vector<std::vector<double>> hcFirstPerRow;

    /** Mean BER ratio between the last and first sweep point. */
    double berRatio() const;

    /** Mean HCfirst change between last and first point (e.g. -0.40
     *  means HCfirst dropped by 40%, as in Obsv. 8 for Mfr. A). */
    double hcFirstChange() const;

    /** CV change of the BER distribution, last vs first point. */
    double berCvChange() const;

    /** CV change of the HCfirst distribution, last vs first point. */
    double hcFirstCvChange() const;
};

/**
 * Sweep tAggOn (Figs. 7 and 8).
 *
 * @param tester Module tester.
 * @param bank Bank under test.
 * @param rows Victim physical rows (§6 uses 1K x 3 regions).
 * @param pattern The module's WCDP.
 * @param values Sweep points; default: the paper's.
 */
TimingSweepResult
sweepAggressorOnTime(const Tester &tester, unsigned bank,
                     const std::vector<unsigned> &rows,
                     const rhmodel::DataPattern &pattern,
                     std::vector<double> values = {});

/** Sweep tAggOff (Figs. 9 and 10). */
TimingSweepResult
sweepAggressorOffTime(const Tester &tester, unsigned bank,
                      const std::vector<unsigned> &rows,
                      const rhmodel::DataPattern &pattern,
                      std::vector<double> values = {});

} // namespace rhs::core

#endif // RHS_CORE_TIMING_ANALYSIS_HH

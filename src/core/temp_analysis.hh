/**
 * @file
 * Temperature analyses of §5: vulnerable temperature ranges of cells
 * (Table 3, Fig. 3), BER vs temperature (Fig. 4) and HCfirst shifts
 * with temperature (Fig. 5).
 */

#ifndef RHS_CORE_TEMP_ANALYSIS_HH
#define RHS_CORE_TEMP_ANALYSIS_HH

#include <cstdint>
#include <map>
#include <vector>

#include "core/tester.hh"

namespace rhs::core
{

/** The paper's test temperatures: 50..90 degC in 5 degC steps (§4.2). */
std::vector<double> standardTemperatures();

/** Per-cell vulnerable-temperature-range population (Table 3, Fig. 3). */
struct TempRangeAnalysis
{
    std::vector<double> temps;

    //! cells whose observed range is [temps[lo], temps[hi]];
    //! rangeCount[lo][hi], lo <= hi.
    std::vector<std::vector<std::uint64_t>> rangeCount;

    std::uint64_t vulnerableCells = 0; //!< Cells flipping at >=1 temp.
    std::uint64_t noGapCells = 0;  //!< Flip at every temp in their range.
    std::uint64_t oneGapCells = 0; //!< Exactly one missing temp point.

    /** Fraction of vulnerable cells in a range bucket. */
    double rangeFraction(std::size_t lo, std::size_t hi) const;

    /** Table 3: fraction of vulnerable cells with no in-range gap. */
    double noGapFraction() const;

    /** Fraction flipping at all tested temperatures (Obsv. 2). */
    double fullRangeFraction() const;

    /** Fraction flipping at exactly one tested temperature (Obsv. 3). */
    double singlePointFraction() const;

    /** Merge another module's analysis into this one (same temps). */
    void merge(const TempRangeAnalysis &other);
};

/**
 * Run BER tests at every temperature and classify each vulnerable
 * cell's observed range.
 *
 * @param tester Module tester.
 * @param bank Bank under test.
 * @param rows Victim physical rows to test.
 * @param pattern The module's WCDP.
 * @param hammers Hammer count (default: 150K).
 */
TempRangeAnalysis
analyzeTempRanges(const Tester &tester, unsigned bank,
                  const std::vector<unsigned> &rows,
                  const rhmodel::DataPattern &pattern,
                  std::uint64_t hammers = kBerHammers);

/** BER change with temperature at victim distances -2/0/+2 (Fig. 4). */
struct BerVsTempResult
{
    std::vector<double> temps;
    //! Mean BER change (%) vs the mean BER at 50 degC, keyed by the
    //! victim's distance from the double-sided victim row.
    std::map<int, std::vector<double>> meanChangePct;
    //! 95% confidence half-widths, same keys.
    std::map<int, std::vector<double>> ci95Pct;
};

BerVsTempResult
analyzeBerVsTemperature(const Tester &tester, unsigned bank,
                        const std::vector<unsigned> &rows,
                        const rhmodel::DataPattern &pattern,
                        std::uint64_t hammers = kBerHammers);

/** HCfirst shift distributions for Fig. 5. */
struct HcShiftResult
{
    //! Per-row HCfirst percentage change 50->55 degC, vulnerable rows
    //! only (positive = less vulnerable at the higher temperature).
    std::vector<double> changePct55;
    //! Per-row HCfirst percentage change 50->90 degC.
    std::vector<double> changePct90;

    /** Fraction of rows whose HCfirst increased (the "Pxx" marks). */
    double crossing55() const;
    double crossing90() const;

    /** Cumulative magnitude ratio (Obsv. 7): sum|d90| / sum|d55|. */
    double magnitudeRatio() const;
};

HcShiftResult
analyzeHcFirstVsTemperature(const Tester &tester, unsigned bank,
                            const std::vector<unsigned> &rows,
                            const rhmodel::DataPattern &pattern);

} // namespace rhs::core

#endif // RHS_CORE_TEMP_ANALYSIS_HH

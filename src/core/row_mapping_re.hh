/**
 * @file
 * Reverse engineering of the logical-to-physical row mapping (§4.2).
 *
 * The paper reconstructs the DRAM-internal row remapping by
 * 1) single-sided hammering each row, 2) inferring that the two rows
 * with the most flips are physically adjacent to the aggressor, and
 * 3) deducing the mapping from the aggressor-victim relations.
 */

#ifndef RHS_CORE_ROW_MAPPING_RE_HH
#define RHS_CORE_ROW_MAPPING_RE_HH

#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "core/tester.hh"

namespace rhs::core
{

/** Logical neighbours inferred for one aggressor row. */
struct InferredAdjacency
{
    unsigned aggressorLogical = 0;
    //! Logical addresses of the two most-flipping victims (one may be
    //! missing at array edges or when a neighbour never flips).
    std::optional<unsigned> victimLow;
    std::optional<unsigned> victimHigh;
};

/**
 * Hammer each logical row single-sided and report the two neighbouring
 * logical rows with the most flips, scanning a +-window of logical
 * addresses around the aggressor.
 *
 * @param tester Module tester.
 * @param bank Bank under test.
 * @param logical_rows Aggressor rows to probe.
 * @param window Logical address radius scanned for victims.
 * @param hammers Hammer count per probe (high to maximize signal).
 */
std::vector<InferredAdjacency>
inferAdjacency(const Tester &tester, unsigned bank,
               const std::vector<unsigned> &logical_rows,
               unsigned window = 8,
               std::uint64_t hammers = kMaxHammers);

/**
 * Check inferred adjacencies against the device's actual mapping:
 * the fraction of probes whose inferred victims are exactly the
 * physical neighbours of the aggressor.
 */
double adjacencyAccuracy(const Tester &tester,
                         const std::vector<InferredAdjacency> &inferred);

} // namespace rhs::core

#endif // RHS_CORE_ROW_MAPPING_RE_HH

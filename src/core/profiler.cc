#include "core/profiler.hh"

#include "stats/descriptive.hh"
#include "util/logging.hh"

namespace rhs::core
{

ProfileEstimate
profileBySampling(const Tester &tester, unsigned bank,
                  unsigned sampled_subarrays, unsigned rows_per_subarray,
                  const rhmodel::DataPattern &pattern,
                  const stats::LinearFit &mfr_model)
{
    const auto survey = subarraySurvey(tester, bank, sampled_subarrays,
                                       rows_per_subarray, pattern);
    RHS_ASSERT(!survey.empty(), "no vulnerable rows found while profiling");

    ProfileEstimate estimate;
    std::vector<double> all;
    double minimum = 0.0;
    bool first = true;
    for (const auto &entry : survey) {
        all.insert(all.end(), entry.hcFirstValues.begin(),
                   entry.hcFirstValues.end());
        if (first || entry.minimumHcFirst < minimum) {
            minimum = entry.minimumHcFirst;
            first = false;
        }
        estimate.rowsTested +=
            static_cast<unsigned>(entry.hcFirstValues.size());
    }
    estimate.sampledAverageHcFirst = stats::mean(all);
    estimate.sampledMinimumHcFirst = minimum;
    estimate.predictedWorstCase =
        mfr_model.predict(estimate.sampledAverageHcFirst);
    return estimate;
}

} // namespace rhs::core

/**
 * @file
 * End-to-end (cycle-accurate) RowHammer test execution.
 *
 * Runs a complete test exactly the way the paper's infrastructure does:
 * set the temperature controller, install the data pattern around the
 * victim, execute the SoftMC hammer program command by command, then
 * read the victim rows back and diff them against the written pattern.
 * Slower than the analytic path, but exercises the full stack
 * (host -> module -> bank FSM -> fault injector -> stored data).
 */

#ifndef RHS_CORE_HAMMER_SESSION_HH
#define RHS_CORE_HAMMER_SESSION_HH

#include <cstdint>
#include <map>

#include "rhmodel/dimm.hh"
#include "rhmodel/pattern.hh"
#include "softmc/program.hh"

namespace rhs::core
{

/** Outcome of a cycle-accurate hammer test. */
struct CycleTestResult
{
    //! Flips per victim offset from the double-sided victim
    //! (offset 0 = the victim, ±2 = single-sided victims, ...).
    std::map<int, unsigned> flipsByOffset;
    dram::Ns elapsedNs = 0.0; //!< Attack duration on the bus.

    /** Flips in the double-sided victim row. */
    unsigned victimFlips() const
    {
        auto it = flipsByOffset.find(0);
        return it == flipsByOffset.end() ? 0 : it->second;
    }
};

/** Configuration for one cycle-accurate test. */
struct CycleTestConfig
{
    unsigned bank = 0;
    unsigned victimPhysicalRow = 0;
    rhmodel::Conditions conditions{};
    std::uint64_t hammers = 150'000;
    unsigned trial = 0;
    //! READs issued to the open aggressor per activation (attack
    //! improvement 3 stretches the on-time this way).
    unsigned readsPerActivation = 0;
    //! How many rows on each side of the victim receive the pattern.
    unsigned patternRadius = 8;
};

/**
 * Run a full double-sided hammer test through the SoftMC host.
 *
 * @param dimm Module under test.
 * @param pattern Data pattern (Table 1).
 * @param config Test configuration.
 */
CycleTestResult runCycleHammerTest(rhmodel::SimulatedDimm &dimm,
                                   const rhmodel::DataPattern &pattern,
                                   const CycleTestConfig &config);

/**
 * Install the pattern into physical rows victim±patternRadius through
 * the bulk-write path (exposed for tests).
 */
void installPattern(rhmodel::SimulatedDimm &dimm, unsigned bank,
                    unsigned victim_physical_row,
                    const rhmodel::DataPattern &pattern,
                    unsigned pattern_radius);

} // namespace rhs::core

#endif // RHS_CORE_HAMMER_SESSION_HH

#include "core/campaign.hh"

#include <sstream>

#include "obs/trace.hh"
#include "stats/descriptive.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace rhs::core
{

std::string
CampaignReport::summary() const
{
    std::ostringstream out;
    out << "Module " << moduleLabel << " (WCDP: "
        << to_string(wcdp) << ")\n";
    out << "  temperature: " << temperatureRanges.vulnerableCells
        << " vulnerable cells, "
        << 100.0 * temperatureRanges.noGapFraction()
        << "% continuous ranges, "
        << 100.0 * temperatureRanges.fullRangeFraction()
        << "% full-range\n";
    if (!temperatureShift.changePct55.empty()) {
        out << "  HCfirst shift crossings: P"
            << 100.0 * temperatureShift.crossing55() << " (55C), P"
            << 100.0 * temperatureShift.crossing90() << " (90C)\n";
    }
    out << "  tAggOn 34.5->154.5ns: BER x" << onTimeSweep.berRatio()
        << ", HCfirst " << 100.0 * onTimeSweep.hcFirstChange() << "%\n";
    out << "  tAggOff 16.5->40.5ns: BER x" << offTimeSweep.berRatio()
        << ", HCfirst " << 100.0 * offTimeSweep.hcFirstChange()
        << "%\n";
    if (!rowHcFirst.empty()) {
        const auto variation = summarizeRowVariation(rowHcFirst);
        out << "  rows: min HCfirst " << variation.minHcFirst
            << ", P5 at " << variation.p5Ratio << "x min\n";
    }
    out << "  profile: " << profile.rows.size() << " rows, worst case "
        << profile.worstCase() << ", " << profile.weakRows().size()
        << " weak rows\n";
    return out.str();
}

CampaignReport
runCampaign(Tester &tester, const CampaignConfig &config)
{
    RHS_ASSERT(config.maxRows >= 10, "campaign needs a usable sample");
    OBS_SPAN("campaign.run");
    const auto &module = tester.module().module();

    CampaignReport report;
    report.moduleLabel = tester.module().label();

    const auto all =
        testedRows(module.geometry(), config.rowsPerRegion);
    std::vector<unsigned> rows;
    const std::size_t take =
        std::min<std::size_t>(config.maxRows, all.size());
    for (std::size_t i = 0; i < take; ++i)
        rows.push_back(all[i * all.size() / take]);

    // 1. WCDP (§4.2).
    rhmodel::Conditions reference;
    rhmodel::DataPattern wcdp = [&] {
        OBS_SPAN("campaign.wcdp");
        return tester.findWorstCasePattern(
            config.bank, {rows[0], rows[rows.size() / 2], rows.back()},
            reference);
    }();
    report.wcdp = wcdp.id();

    // 2. Temperature (§5).
    {
        OBS_SPAN("campaign.temperature");
        report.temperatureRanges =
            analyzeTempRanges(tester, config.bank, rows, wcdp);
        report.temperatureShift =
            analyzeHcFirstVsTemperature(tester, config.bank, rows, wcdp);
    }

    // 3. Aggressor timings (§6).
    {
        OBS_SPAN("campaign.timing");
        report.onTimeSweep =
            sweepAggressorOnTime(tester, config.bank, rows, wcdp);
        report.offTimeSweep =
            sweepAggressorOffTime(tester, config.bank, rows, wcdp);
    }

    // 4+5. Spatial variation (§7, at 75 degC) and the defense-facing
    // profile. The Fig. 11 row survey and the profile measure the
    // same (bank, row, conditions, pattern) HCfirst keys, so run the
    // search once into the profile and derive the survey from it —
    // rowHcFirstSurvey compacts hcFirstMin values in row order, which
    // is exactly the profile rows with kNotVulnerable skipped.
    report.profile.moduleLabel = report.moduleLabel;
    report.profile.serial = module.info().serial;
    report.profile.wcdp = wcdp.id();
    const auto conditions = spatialConditions();
    report.profile.temperature = conditions.temperature;
    report.profile.rows.resize(rows.size());
    {
        OBS_SPAN("campaign.spatial_profile");
        util::parallelFor(0, rows.size(), [&](std::size_t r) {
            report.profile.rows[r] = {
                config.bank, rows[r],
                tester.hcFirstMin(config.bank, rows[r], conditions,
                                  wcdp)};
        });
    }
    report.rowHcFirst.reserve(rows.size());
    for (const auto &entry : report.profile.rows) {
        if (entry.hcFirst != kNotVulnerable)
            report.rowHcFirst.push_back(
                static_cast<double>(entry.hcFirst));
    }
    {
        OBS_SPAN("campaign.subarrays");
        report.subarrays =
            subarraySurvey(tester, config.bank, config.subarrays,
                           config.rowsPerSubarray, wcdp);
    }
    return report;
}

} // namespace rhs::core

/**
 * @file
 * Fast RowHammer profiling via subarray sampling (Defense Imp. 2, §8.2).
 *
 * Obsvs. 15-16 show that subarrays within a module have similar HCfirst
 * distributions and that a linear model relates a subarray's average
 * HCfirst to its worst-case (minimum) HCfirst. The profiler exploits
 * both: it characterizes only a few subarrays and predicts the
 * module's worst-case HCfirst from the manufacturer's linear model,
 * cutting profiling time by an order of magnitude.
 */

#ifndef RHS_CORE_PROFILER_HH
#define RHS_CORE_PROFILER_HH

#include "core/spatial.hh"
#include "core/tester.hh"
#include "stats/regression.hh"

namespace rhs::core
{

/** Output of a sampled profiling pass. */
struct ProfileEstimate
{
    double sampledAverageHcFirst = 0.0; //!< Avg over sampled rows.
    double sampledMinimumHcFirst = 0.0; //!< Min over sampled rows.
    //! Worst-case prediction from the manufacturer linear model
    //! applied to the sampled average.
    double predictedWorstCase = 0.0;
    unsigned rowsTested = 0;

    /** Safe defense threshold: min of observation and prediction. */
    double
    recommendedThreshold() const
    {
        return std::min(sampledMinimumHcFirst, predictedWorstCase);
    }
};

/**
 * Profile a module by sampling a few subarrays.
 *
 * @param tester Module tester.
 * @param bank Bank to profile.
 * @param sampled_subarrays How many subarrays to test (the paper's
 *        example: 8 of 128).
 * @param rows_per_subarray Rows per sampled subarray.
 * @param pattern The module's WCDP.
 * @param mfr_model Per-manufacturer Fig. 14 linear model (min vs avg).
 */
ProfileEstimate
profileBySampling(const Tester &tester, unsigned bank,
                  unsigned sampled_subarrays, unsigned rows_per_subarray,
                  const rhmodel::DataPattern &pattern,
                  const stats::LinearFit &mfr_model);

} // namespace rhs::core

#endif // RHS_CORE_PROFILER_HH

#include "core/tester.hh"

#include <algorithm>

#include "obs/trace.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace rhs::core
{

rhmodel::RowEvalPtr
Tester::rowEval(unsigned bank, unsigned victim_physical_row,
                const rhmodel::Conditions &conditions,
                const rhmodel::DataPattern &pattern, unsigned trial) const
{
    const auto attack =
        rhmodel::HammerAttack::doubleSided(bank, victim_physical_row);
    return dimm.analytic().rowEval(victim_physical_row, attack,
                                   conditions, pattern, trial);
}

unsigned
Tester::berOfRow(unsigned bank, unsigned victim_physical_row,
                 const rhmodel::Conditions &conditions,
                 const rhmodel::DataPattern &pattern,
                 std::uint64_t hammers, unsigned trial) const
{
    // Count straight off the cached curve — no flip-location vector.
    return rowEval(bank, victim_physical_row, conditions, pattern, trial)
        ->flipsAt(static_cast<double>(hammers));
}

rhmodel::RowBerResult
Tester::berDetail(unsigned bank, unsigned victim_physical_row,
                  const rhmodel::Conditions &conditions,
                  const rhmodel::DataPattern &pattern,
                  std::uint64_t hammers, unsigned trial) const
{
    const auto attack =
        rhmodel::HammerAttack::doubleSided(bank, victim_physical_row);
    return dimm.analytic().berTest(victim_physical_row, attack,
                                   conditions, pattern, hammers, trial);
}

unsigned
Tester::berAtDistance(unsigned bank, unsigned center, int offset,
                      const rhmodel::Conditions &conditions,
                      const rhmodel::DataPattern &pattern,
                      std::uint64_t hammers, unsigned trial) const
{
    const long victim = static_cast<long>(center) + offset;
    const unsigned rows = dimm.module().geometry().rowsPerBank();
    if (victim < 0 || victim >= static_cast<long>(rows))
        return 0;
    const auto attack = rhmodel::HammerAttack::doubleSided(bank, center);
    return static_cast<unsigned>(
        dimm.analytic()
            .berTest(static_cast<unsigned>(victim), attack, conditions,
                     pattern, hammers, trial)
            .flips.size());
}

std::uint64_t
Tester::hcFirstSearch(unsigned bank, unsigned victim_physical_row,
                      const rhmodel::Conditions &conditions,
                      const rhmodel::DataPattern &pattern,
                      unsigned trial) const
{
    // One kernel pass per (row, conditions, pattern, trial) key; the
    // paper's probe sequence below replays unchanged against the cached
    // curve, so each probe is one comparison instead of a full O(cells)
    // model evaluation. The row flips at H hammers iff its minimum cell
    // HCfirst is <= H — exactly the berOfRow(...) > 0 predicate the
    // per-probe path evaluated.
    const auto eval =
        rowEval(bank, victim_physical_row, conditions, pattern, trial);
    const double row_hc = eval->minHcFirst;
    auto flips_at = [&](std::uint64_t hammers) {
        return row_hc <= static_cast<double>(hammers);
    };

    // Quick reject: not vulnerable within the 512K-hammer budget.
    if (!flips_at(kMaxHammers))
        return kNotVulnerable;

    std::uint64_t hammers = kHcFirstInitial;
    std::uint64_t best = kMaxHammers;
    for (std::uint64_t delta = kHcFirstInitialDelta;
         delta >= kHcFirstAccuracy; delta /= 2) {
        if (flips_at(hammers)) {
            best = std::min(best, hammers);
            hammers = hammers > delta ? hammers - delta : kHcFirstAccuracy;
        } else {
            hammers = std::min(hammers + delta, kMaxHammers);
        }
    }
    if (flips_at(hammers))
        best = std::min(best, hammers);
    return best;
}

std::uint64_t
Tester::hcFirstMin(unsigned bank, unsigned victim_physical_row,
                   const rhmodel::Conditions &conditions,
                   const rhmodel::DataPattern &pattern) const
{
    std::uint64_t best = kNotVulnerable;
    for (unsigned trial = 0; trial < kRepetitions; ++trial) {
        const auto hc = hcFirstSearch(bank, victim_physical_row,
                                      conditions, pattern, trial);
        if (hc == kNotVulnerable)
            continue;
        best = best == kNotVulnerable ? hc : std::min(best, hc);
    }
    return best;
}

rhmodel::DataPattern
Tester::findWorstCasePattern(unsigned bank,
                             const std::vector<unsigned> &sample_rows,
                             const rhmodel::Conditions &conditions) const
{
    RHS_ASSERT(!sample_rows.empty(), "WCDP needs sample rows");
    OBS_SPAN("tester.wcdp_search");
    const auto pattern_count = std::size(rhmodel::allPatterns);

    // Every (pattern, row) BER test is independent: flatten the grid,
    // test in parallel, reduce serially. Each grid slot runs the
    // row-evaluation kernel exactly once for its (pattern, row) key
    // and counts flips off the curve. The winner is selected by the
    // same first-strictly-greater scan as the serial loop, so tie
    // handling (first pattern in allPatterns order wins) is unchanged.
    std::vector<std::uint64_t> grid(pattern_count * sample_rows.size(),
                                    0);
    util::parallelFor(0, grid.size(), [&](std::size_t i) {
        const std::size_t p = i / sample_rows.size();
        const unsigned row = sample_rows[i % sample_rows.size()];
        const rhmodel::DataPattern pattern(
            rhmodel::allPatterns[p], dimm.module().info().serial);
        grid[i] = berOfRow(bank, row, conditions, pattern);
    });

    rhmodel::DataPattern best(rhmodel::PatternId::ColStripe);
    std::uint64_t best_flips = 0;
    bool first = true;
    for (std::size_t p = 0; p < pattern_count; ++p) {
        std::uint64_t flips = 0;
        for (std::size_t r = 0; r < sample_rows.size(); ++r)
            flips += grid[p * sample_rows.size() + r];
        if (first || flips > best_flips) {
            best = rhmodel::DataPattern(rhmodel::allPatterns[p],
                                        dimm.module().info().serial);
            best_flips = flips;
            first = false;
        }
    }
    return best;
}

std::vector<unsigned>
testedRows(const dram::Geometry &geometry, unsigned per_region)
{
    const unsigned rows = geometry.rowsPerBank();
    RHS_ASSERT(per_region > 0 && per_region * 3 <= rows,
               "per-region row count too large for the bank");

    std::vector<unsigned> out;
    out.reserve(3 * per_region);
    auto add_range = [&](unsigned start) {
        for (unsigned r = start; r < start + per_region; ++r) {
            // Double-sided victims need both physical neighbours.
            if (r >= 2 && r + 2 < rows)
                out.push_back(r);
        }
    };
    add_range(0);
    add_range(rows / 2 - per_region / 2);
    add_range(rows - per_region);

    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

} // namespace rhs::core

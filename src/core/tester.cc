#include "core/tester.hh"

#include <algorithm>

#include "util/logging.hh"

namespace rhs::core
{

unsigned
Tester::berOfRow(unsigned bank, unsigned victim_physical_row,
                 const rhmodel::Conditions &conditions,
                 const rhmodel::DataPattern &pattern,
                 std::uint64_t hammers, unsigned trial) const
{
    return static_cast<unsigned>(
        berDetail(bank, victim_physical_row, conditions, pattern, hammers,
                  trial)
            .flips.size());
}

rhmodel::RowBerResult
Tester::berDetail(unsigned bank, unsigned victim_physical_row,
                  const rhmodel::Conditions &conditions,
                  const rhmodel::DataPattern &pattern,
                  std::uint64_t hammers, unsigned trial) const
{
    const auto attack =
        rhmodel::HammerAttack::doubleSided(bank, victim_physical_row);
    return dimm.analytic().berTest(victim_physical_row, attack,
                                   conditions, pattern, hammers, trial);
}

unsigned
Tester::berAtDistance(unsigned bank, unsigned center, int offset,
                      const rhmodel::Conditions &conditions,
                      const rhmodel::DataPattern &pattern,
                      std::uint64_t hammers, unsigned trial) const
{
    const long victim = static_cast<long>(center) + offset;
    const unsigned rows = dimm.module().geometry().rowsPerBank();
    if (victim < 0 || victim >= static_cast<long>(rows))
        return 0;
    const auto attack = rhmodel::HammerAttack::doubleSided(bank, center);
    return static_cast<unsigned>(
        dimm.analytic()
            .berTest(static_cast<unsigned>(victim), attack, conditions,
                     pattern, hammers, trial)
            .flips.size());
}

std::uint64_t
Tester::hcFirstSearch(unsigned bank, unsigned victim_physical_row,
                      const rhmodel::Conditions &conditions,
                      const rhmodel::DataPattern &pattern,
                      unsigned trial) const
{
    auto flips_at = [&](std::uint64_t hammers) {
        return berOfRow(bank, victim_physical_row, conditions, pattern,
                        hammers, trial) > 0;
    };

    // Quick reject: not vulnerable within the 512K-hammer budget.
    if (!flips_at(kMaxHammers))
        return kNotVulnerable;

    std::uint64_t hammers = kHcFirstInitial;
    std::uint64_t best = kMaxHammers;
    for (std::uint64_t delta = kHcFirstInitialDelta;
         delta >= kHcFirstAccuracy; delta /= 2) {
        if (flips_at(hammers)) {
            best = std::min(best, hammers);
            hammers = hammers > delta ? hammers - delta : kHcFirstAccuracy;
        } else {
            hammers = std::min(hammers + delta, kMaxHammers);
        }
    }
    if (flips_at(hammers))
        best = std::min(best, hammers);
    return best;
}

std::uint64_t
Tester::hcFirstMin(unsigned bank, unsigned victim_physical_row,
                   const rhmodel::Conditions &conditions,
                   const rhmodel::DataPattern &pattern) const
{
    std::uint64_t best = kNotVulnerable;
    for (unsigned trial = 0; trial < kRepetitions; ++trial) {
        const auto hc = hcFirstSearch(bank, victim_physical_row,
                                      conditions, pattern, trial);
        if (hc == kNotVulnerable)
            continue;
        best = best == kNotVulnerable ? hc : std::min(best, hc);
    }
    return best;
}

rhmodel::DataPattern
Tester::findWorstCasePattern(unsigned bank,
                             const std::vector<unsigned> &sample_rows,
                             const rhmodel::Conditions &conditions) const
{
    RHS_ASSERT(!sample_rows.empty(), "WCDP needs sample rows");
    rhmodel::DataPattern best(rhmodel::PatternId::ColStripe);
    std::uint64_t best_flips = 0;
    bool first = true;
    for (auto id : rhmodel::allPatterns) {
        const rhmodel::DataPattern pattern(
            id, dimm.module().info().serial);
        std::uint64_t flips = 0;
        for (unsigned row : sample_rows)
            flips += berOfRow(bank, row, conditions, pattern);
        if (first || flips > best_flips) {
            best = pattern;
            best_flips = flips;
            first = false;
        }
    }
    return best;
}

std::vector<unsigned>
testedRows(const dram::Geometry &geometry, unsigned per_region)
{
    const unsigned rows = geometry.rowsPerBank();
    RHS_ASSERT(per_region > 0 && per_region * 3 <= rows,
               "per-region row count too large for the bank");

    std::vector<unsigned> out;
    out.reserve(3 * per_region);
    auto add_range = [&](unsigned start) {
        for (unsigned r = start; r < start + per_region; ++r) {
            // Double-sided victims need both physical neighbours.
            if (r >= 2 && r + 2 < rows)
                out.push_back(r);
        }
    };
    add_range(0);
    add_range(rows / 2 - per_region / 2);
    add_range(rows - per_region);

    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

} // namespace rhs::core

#include "core/timing_analysis.hh"

#include "obs/trace.hh"
#include "stats/descriptive.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace rhs::core
{

std::vector<double>
standardOnTimes()
{
    // 34.5 ns (tRAS) to 154.5 ns in 30 ns steps (§6).
    return {34.5, 64.5, 94.5, 124.5, 154.5};
}

std::vector<double>
standardOffTimes()
{
    // 16.5 ns (tRP) to 40.5 ns in 8 ns steps (§6.2).
    return {16.5, 24.5, 32.5, 40.5};
}

double
TimingSweepResult::berRatio() const
{
    RHS_ASSERT(flipsPerRowPerChip.size() >= 2);
    const double base = stats::mean(flipsPerRowPerChip.front());
    if (base <= 0.0)
        return 0.0;
    return stats::mean(flipsPerRowPerChip.back()) / base;
}

double
TimingSweepResult::hcFirstChange() const
{
    RHS_ASSERT(hcFirstPerRow.size() >= 2);
    const double base = stats::mean(hcFirstPerRow.front());
    if (base <= 0.0)
        return 0.0;
    return stats::mean(hcFirstPerRow.back()) / base - 1.0;
}

double
TimingSweepResult::berCvChange() const
{
    const double base =
        stats::coefficientOfVariation(flipsPerRowPerChip.front());
    if (base == 0.0)
        return 0.0;
    return stats::coefficientOfVariation(flipsPerRowPerChip.back()) /
               base -
           1.0;
}

double
TimingSweepResult::hcFirstCvChange() const
{
    const double base = stats::coefficientOfVariation(hcFirstPerRow.front());
    if (base == 0.0)
        return 0.0;
    return stats::coefficientOfVariation(hcFirstPerRow.back()) / base -
           1.0;
}

namespace
{

TimingSweepResult
sweepImpl(const Tester &tester, unsigned bank,
          const std::vector<unsigned> &rows,
          const rhmodel::DataPattern &pattern,
          const std::vector<double> &values, bool vary_on_time)
{
    RHS_ASSERT(!rows.empty(), "timing sweep needs rows");
    const unsigned chips = tester.module().module().chipCount();

    TimingSweepResult result;
    result.values = values;
    result.flipsPerRowPerChip.resize(values.size());
    result.hcFirstPerRow.resize(values.size());

    // flipsPerChip[point][chip]
    std::vector<std::vector<std::uint64_t>> flips_per_chip(
        values.size(), std::vector<std::uint64_t>(chips, 0));

    // Every (row, sweep point) is independent. Rows run in parallel
    // into per-row slots; the serial fold below accumulates flip
    // counts (order-independent integer sums) and appends HCfirst
    // values in row order, matching the serial loop byte-for-byte.
    struct RowPoint
    {
        std::vector<std::uint64_t> flipsPerChip;
        std::uint64_t hcFirst = kNotVulnerable;
    };
    std::vector<std::vector<RowPoint>> per_row(rows.size());

    util::parallelFor(0, rows.size(), [&](std::size_t r) {
        const unsigned row = rows[r];
        auto &points = per_row[r];
        points.resize(values.size());
        for (std::size_t v = 0; v < values.size(); ++v) {
            rhmodel::Conditions conditions;
            conditions.temperature = 50.0; // §6 runs at 50 degC.
            if (vary_on_time)
                conditions.tAggOn = values[v];
            else
                conditions.tAggOff = values[v];

            points[v].flipsPerChip.assign(chips, 0);
            // Count per-chip flips off the cached curve; the trial-0
            // evaluation fetched here is the same key the trial-0
            // HCfirst search below replays, so it is computed once.
            const auto eval =
                tester.rowEval(bank, row, conditions, pattern);
            eval->forEachFlip(static_cast<double>(kBerHammers),
                              [&](const dram::CellLocation &loc) {
                                  ++points[v].flipsPerChip[loc.chip];
                              });

            points[v].hcFirst = tester.hcFirstMin(bank, row, conditions,
                                                  pattern);
        }
    });

    for (const auto &points : per_row) {
        for (std::size_t v = 0; v < values.size(); ++v) {
            for (unsigned chip = 0; chip < chips; ++chip)
                flips_per_chip[v][chip] += points[v].flipsPerChip[chip];
            if (points[v].hcFirst != kNotVulnerable)
                result.hcFirstPerRow[v].push_back(
                    static_cast<double>(points[v].hcFirst));
        }
    }

    for (std::size_t v = 0; v < values.size(); ++v) {
        for (unsigned chip = 0; chip < chips; ++chip) {
            result.flipsPerRowPerChip[v].push_back(
                static_cast<double>(flips_per_chip[v][chip]) /
                static_cast<double>(rows.size()));
        }
    }
    return result;
}

} // namespace

TimingSweepResult
sweepAggressorOnTime(const Tester &tester, unsigned bank,
                     const std::vector<unsigned> &rows,
                     const rhmodel::DataPattern &pattern,
                     std::vector<double> values)
{
    OBS_SPAN("sweep.tagg_on");
    if (values.empty())
        values = standardOnTimes();
    return sweepImpl(tester, bank, rows, pattern, values, true);
}

TimingSweepResult
sweepAggressorOffTime(const Tester &tester, unsigned bank,
                      const std::vector<unsigned> &rows,
                      const rhmodel::DataPattern &pattern,
                      std::vector<double> values)
{
    OBS_SPAN("sweep.tagg_off");
    if (values.empty())
        values = standardOffTimes();
    return sweepImpl(tester, bank, rows, pattern, values, false);
}

} // namespace rhs::core

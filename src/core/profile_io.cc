#include "core/profile_io.hh"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/logging.hh"

namespace rhs::core
{

namespace
{

constexpr const char *kMagic = "rowhammer-profile v1";

rhmodel::PatternId
patternFromName(const std::string &name)
{
    for (auto id : rhmodel::allPatterns) {
        if (to_string(id) == name)
            return id;
    }
    throw std::runtime_error("unknown pattern name: " + name);
}

} // namespace

std::uint64_t
ModuleProfile::worstCase() const
{
    std::uint64_t worst = 0;
    for (const auto &entry : rows) {
        if (entry.hcFirst == 0)
            continue;
        if (worst == 0 || entry.hcFirst < worst)
            worst = entry.hcFirst;
    }
    return worst;
}

std::vector<unsigned>
ModuleProfile::weakRows(double factor) const
{
    const auto worst = worstCase();
    std::vector<unsigned> weak;
    if (worst == 0)
        return weak;
    const double cut = static_cast<double>(worst) * factor;
    for (const auto &entry : rows) {
        if (entry.hcFirst != 0 &&
            static_cast<double>(entry.hcFirst) <= cut) {
            weak.push_back(entry.physicalRow);
        }
    }
    std::sort(weak.begin(), weak.end());
    return weak;
}

void
saveProfile(std::ostream &out, const ModuleProfile &profile)
{
    out << kMagic << "\n";
    out << "module " << profile.moduleLabel << " serial " << std::hex
        << profile.serial << std::dec << " temperature "
        << profile.temperature << " wcdp " << to_string(profile.wcdp)
        << "\n";
    out << "# row <bank> <physical_row> <hcfirst; 0 = not vulnerable>\n";
    for (const auto &entry : profile.rows) {
        out << "row " << entry.bank << " " << entry.physicalRow << " "
            << entry.hcFirst << "\n";
    }
}

ModuleProfile
loadProfile(std::istream &in)
{
    std::string line;
    if (!std::getline(in, line) || line != kMagic)
        throw std::runtime_error("not a rowhammer-profile v1 file");

    ModuleProfile profile;
    bool header_seen = false;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream fields(line);
        std::string keyword;
        fields >> keyword;
        if (keyword == "module") {
            std::string tag;
            std::string wcdp_name;
            fields >> profile.moduleLabel;
            fields >> tag;
            if (tag != "serial")
                throw std::runtime_error("malformed module line");
            fields >> std::hex >> profile.serial >> std::dec;
            fields >> tag;
            if (tag != "temperature")
                throw std::runtime_error("malformed module line");
            fields >> profile.temperature;
            fields >> tag;
            if (tag != "wcdp")
                throw std::runtime_error("malformed module line");
            fields >> wcdp_name;
            if (fields.fail())
                throw std::runtime_error("malformed module line");
            profile.wcdp = patternFromName(wcdp_name);
            header_seen = true;
        } else if (keyword == "row") {
            ModuleProfile::RowEntry entry;
            fields >> entry.bank >> entry.physicalRow >> entry.hcFirst;
            if (fields.fail())
                throw std::runtime_error("malformed row line: " + line);
            profile.rows.push_back(entry);
        } else {
            throw std::runtime_error("unknown record: " + keyword);
        }
    }
    if (!header_seen)
        throw std::runtime_error("profile missing module header");
    return profile;
}

std::string
saveProfileToString(const ModuleProfile &profile)
{
    std::ostringstream out;
    saveProfile(out, profile);
    return out.str();
}

ModuleProfile
loadProfileFromString(const std::string &text)
{
    std::istringstream in(text);
    return loadProfile(in);
}

} // namespace rhs::core

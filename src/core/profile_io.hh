/**
 * @file
 * Persistence for characterization results.
 *
 * Profiling a module is expensive (§8.2 Improvement 2 is about
 * shrinking that cost); systems that configure defenses from
 * characterization data need the results to survive across boots.
 * This module serializes a module's RowHammer profile — per-row
 * HCfirst, the identified weak rows, and the WCDP — to a small
 * line-oriented text format and parses it back.
 */

#ifndef RHS_CORE_PROFILE_IO_HH
#define RHS_CORE_PROFILE_IO_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "rhmodel/pattern.hh"

namespace rhs::core
{

/** A module's persisted RowHammer profile. */
struct ModuleProfile
{
    std::string moduleLabel;       //!< e.g. "B0".
    std::uint64_t serial = 0;      //!< Module identity check.
    double temperature = 75.0;     //!< Conditions of the survey.
    rhmodel::PatternId wcdp = rhmodel::PatternId::Checkered;

    struct RowEntry
    {
        unsigned bank = 0;
        unsigned physicalRow = 0;
        std::uint64_t hcFirst = 0; //!< 0 = not vulnerable (<= cap).
    };
    std::vector<RowEntry> rows;

    /** Minimum HCfirst over vulnerable rows (0 when none). */
    std::uint64_t worstCase() const;

    /** Rows whose HCfirst is within `factor` of the worst case. */
    std::vector<unsigned> weakRows(double factor = 2.0) const;
};

/**
 * Serialize a profile. Format (line-oriented, '#' comments):
 *
 *   rowhammer-profile v1
 *   module <label> serial <hex> temperature <degC> wcdp <pattern>
 *   row <bank> <physical_row> <hcfirst>
 *   ...
 */
void saveProfile(std::ostream &out, const ModuleProfile &profile);

/**
 * Parse a profile.
 *
 * @throws std::runtime_error on malformed input (wrong magic,
 *         truncated records, unknown pattern names).
 */
ModuleProfile loadProfile(std::istream &in);

/** Convenience: serialize to / parse from a string. */
std::string saveProfileToString(const ModuleProfile &profile);
ModuleProfile loadProfileFromString(const std::string &text);

} // namespace rhs::core

#endif // RHS_CORE_PROFILE_IO_HH

#include "core/temp_analysis.hh"

#include <unordered_map>

#include "obs/trace.hh"
#include "stats/descriptive.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace rhs::core
{

std::vector<double>
standardTemperatures()
{
    std::vector<double> temps;
    for (double t = 50.0; t <= 90.0 + 1e-9; t += 5.0)
        temps.push_back(t);
    return temps;
}

double
TempRangeAnalysis::rangeFraction(std::size_t lo, std::size_t hi) const
{
    RHS_ASSERT(lo < rangeCount.size() && hi < rangeCount[lo].size());
    if (vulnerableCells == 0)
        return 0.0;
    return static_cast<double>(rangeCount[lo][hi]) /
           static_cast<double>(vulnerableCells);
}

double
TempRangeAnalysis::noGapFraction() const
{
    if (vulnerableCells == 0)
        return 0.0;
    return static_cast<double>(noGapCells) /
           static_cast<double>(vulnerableCells);
}

double
TempRangeAnalysis::fullRangeFraction() const
{
    return rangeFraction(0, temps.size() - 1);
}

double
TempRangeAnalysis::singlePointFraction() const
{
    double total = 0.0;
    for (std::size_t i = 0; i < temps.size(); ++i)
        total += rangeFraction(i, i);
    return total;
}

void
TempRangeAnalysis::merge(const TempRangeAnalysis &other)
{
    RHS_ASSERT(temps == other.temps, "merging incompatible analyses");
    vulnerableCells += other.vulnerableCells;
    noGapCells += other.noGapCells;
    oneGapCells += other.oneGapCells;
    for (std::size_t lo = 0; lo < rangeCount.size(); ++lo)
        for (std::size_t hi = 0; hi < rangeCount[lo].size(); ++hi)
            rangeCount[lo][hi] += other.rangeCount[lo][hi];
}

TempRangeAnalysis
analyzeTempRanges(const Tester &tester, unsigned bank,
                  const std::vector<unsigned> &rows,
                  const rhmodel::DataPattern &pattern,
                  std::uint64_t hammers)
{
    OBS_SPAN("sweep.temp_ranges");
    TempRangeAnalysis analysis;
    analysis.temps = standardTemperatures();
    const std::size_t n = analysis.temps.size();
    analysis.rangeCount.assign(n, std::vector<std::uint64_t>(n, 0));

    // Every row's classification is independent, so rows are
    // processed in parallel into per-row partial analyses (one
    // pre-sized slot per row, never appended) and folded serially.
    // The fold only adds integer counters, so the result is
    // bit-identical for any job count.
    std::vector<TempRangeAnalysis> partials(rows.size());
    util::parallelFor(0, rows.size(), [&](std::size_t r) {
        const unsigned row = rows[r];
        auto &part = partials[r];
        part.temps = analysis.temps;
        part.rangeCount.assign(n, std::vector<std::uint64_t>(n, 0));

        // Per-cell bitmask of temperatures showing a flip. Keys are
        // cell positions within the row (chip, column, bit). Flips
        // come straight off the cached row-evaluation curve — no
        // RowBerResult materialized per temperature point.
        std::unordered_map<std::uint64_t, std::uint32_t> masks;
        for (std::size_t t = 0; t < n; ++t) {
            rhmodel::Conditions conditions;
            conditions.temperature = part.temps[t];
            const auto eval =
                tester.rowEval(bank, row, conditions, pattern);
            eval->forEachFlip(
                static_cast<double>(hammers),
                [&](const dram::CellLocation &loc) {
                    const std::uint64_t key =
                        (static_cast<std::uint64_t>(loc.chip) << 32) |
                        (loc.column << 8) | loc.bit;
                    masks[key] |= 1u << t;
                });
        }

        for (const auto &[key, mask] : masks) {
            (void)key;
            ++part.vulnerableCells;
            // Observed range: lowest and highest set temperature.
            std::size_t lo = 0;
            while (!(mask & (1u << lo)))
                ++lo;
            std::size_t hi = n - 1;
            while (!(mask & (1u << hi)))
                --hi;
            ++part.rangeCount[lo][hi];

            unsigned gaps = 0;
            for (std::size_t t = lo; t <= hi; ++t) {
                if (!(mask & (1u << t)))
                    ++gaps;
            }
            if (gaps == 0)
                ++part.noGapCells;
            else if (gaps == 1)
                ++part.oneGapCells;
        }
    });

    for (const auto &part : partials)
        analysis.merge(part);
    return analysis;
}

BerVsTempResult
analyzeBerVsTemperature(const Tester &tester, unsigned bank,
                        const std::vector<unsigned> &rows,
                        const rhmodel::DataPattern &pattern,
                        std::uint64_t hammers)
{
    BerVsTempResult result;
    result.temps = standardTemperatures();
    const std::vector<int> offsets{-2, 0, 2};

    // ber[offset][temp][row]: pre-sized, written by row index from
    // the parallel loop — identical layout for any job count.
    std::map<int, std::vector<std::vector<double>>> ber;
    for (int offset : offsets)
        ber[offset].assign(result.temps.size(),
                           std::vector<double>(rows.size(), 0.0));

    util::parallelFor(0, rows.size(), [&](std::size_t r) {
        const unsigned row = rows[r];
        for (std::size_t t = 0; t < result.temps.size(); ++t) {
            rhmodel::Conditions conditions;
            conditions.temperature = result.temps[t];
            for (int offset : offsets) {
                ber.at(offset)[t][r] = static_cast<double>(
                    tester.berAtDistance(bank, row, offset, conditions,
                                         pattern, hammers));
            }
        }
    });

    for (int offset : offsets) {
        const double base = stats::mean(ber[offset][0]);
        auto &mean_series = result.meanChangePct[offset];
        auto &ci_series = result.ci95Pct[offset];
        for (std::size_t t = 0; t < result.temps.size(); ++t) {
            if (base <= 0.0) {
                mean_series.push_back(0.0);
                ci_series.push_back(0.0);
                continue;
            }
            std::vector<double> change;
            change.reserve(ber[offset][t].size());
            for (double value : ber[offset][t])
                change.push_back(100.0 * (value - base) / base);
            mean_series.push_back(stats::mean(change));
            ci_series.push_back(stats::confidenceInterval95(change));
        }
    }
    return result;
}

double
HcShiftResult::crossing55() const
{
    return stats::fractionPositive(changePct55);
}

double
HcShiftResult::crossing90() const
{
    return stats::fractionPositive(changePct90);
}

double
HcShiftResult::magnitudeRatio() const
{
    const double m55 = stats::cumulativeMagnitude(changePct55);
    if (m55 == 0.0)
        return 0.0;
    return stats::cumulativeMagnitude(changePct90) / m55;
}

HcShiftResult
analyzeHcFirstVsTemperature(const Tester &tester, unsigned bank,
                            const std::vector<unsigned> &rows,
                            const rhmodel::DataPattern &pattern)
{
    OBS_SPAN("sweep.hcfirst_vs_temp");
    HcShiftResult result;

    // Per-row shifts into pre-sized slots; compacted serially in row
    // order below so the output vectors match the serial loop
    // byte-for-byte.
    struct RowShift
    {
        bool vulnerable = false;
        double pct55 = 0.0;
        double pct90 = 0.0;
    };
    std::vector<RowShift> shifts(rows.size());

    util::parallelFor(0, rows.size(), [&](std::size_t r) {
        const unsigned row = rows[r];
        rhmodel::Conditions at50, at55, at90;
        at50.temperature = 50.0;
        at55.temperature = 55.0;
        at90.temperature = 90.0;

        const auto hc50 = tester.hcFirstMin(bank, row, at50, pattern);
        if (hc50 == kNotVulnerable)
            return;
        const auto hc55 = tester.hcFirstMin(bank, row, at55, pattern);
        const auto hc90 = tester.hcFirstMin(bank, row, at90, pattern);

        auto change_pct = [&](std::uint64_t hc) {
            // A row not vulnerable at the higher temperature maps to
            // the search cap: its HCfirst increased at least that far.
            const double to = hc == kNotVulnerable
                                  ? static_cast<double>(kMaxHammers)
                                  : static_cast<double>(hc);
            return 100.0 * (to - static_cast<double>(hc50)) /
                   static_cast<double>(hc50);
        };
        shifts[r] = {true, change_pct(hc55), change_pct(hc90)};
    });

    for (const auto &shift : shifts) {
        if (!shift.vulnerable)
            continue;
        result.changePct55.push_back(shift.pct55);
        result.changePct90.push_back(shift.pct90);
    }
    return result;
}

} // namespace rhs::core

/**
 * @file
 * One-call characterization campaign.
 *
 * Wraps the full §4/§5/§6/§7 methodology for a module into a single
 * entry point producing a structured report: WCDP, temperature
 * behaviour, aggressor-timing sensitivity, row/subarray variation,
 * and the persisted profile a defense can be configured from.
 */

#ifndef RHS_CORE_CAMPAIGN_HH
#define RHS_CORE_CAMPAIGN_HH

#include <string>

#include "core/profile_io.hh"
#include "core/spatial.hh"
#include "core/temp_analysis.hh"
#include "core/tester.hh"
#include "core/timing_analysis.hh"

namespace rhs::core
{

/** Scale of a characterization campaign. */
struct CampaignConfig
{
    unsigned bank = 0;
    unsigned rowsPerRegion = 20; //!< First/middle/last sample size.
    unsigned maxRows = 60;       //!< Cap on total tested rows.
    unsigned subarrays = 6;      //!< Subarrays sampled for §7.3.
    unsigned rowsPerSubarray = 8;
};

/** Everything one campaign measures. */
struct CampaignReport
{
    std::string moduleLabel;
    rhmodel::PatternId wcdp = rhmodel::PatternId::Checkered;

    TempRangeAnalysis temperatureRanges; //!< Table 3 / Fig. 3.
    HcShiftResult temperatureShift;      //!< Fig. 5.
    TimingSweepResult onTimeSweep;       //!< Figs. 7-8.
    TimingSweepResult offTimeSweep;      //!< Figs. 9-10.
    std::vector<double> rowHcFirst;      //!< Fig. 11 (75 degC).
    std::vector<SubarrayStats> subarrays; //!< Figs. 14-15.

    ModuleProfile profile; //!< Persistable defense-facing profile.

    /** Human-readable multi-line summary. */
    std::string summary() const;
};

/**
 * Run the full campaign on one module.
 *
 * Cost scales with config.maxRows; the defaults finish in a few
 * seconds per module through the analytic path.
 */
CampaignReport runCampaign(Tester &tester,
                           const CampaignConfig &config = {});

} // namespace rhs::core

#endif // RHS_CORE_CAMPAIGN_HH

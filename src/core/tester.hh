/**
 * @file
 * RowHammer characterization tester (the paper's methodology, §4.2).
 *
 * Wraps a simulated DIMM with the operations every analysis builds on:
 * installing data patterns around a victim, running double-sided BER
 * tests, and measuring HCfirst with the paper's binary search. The
 * tester evaluates tests through the closed-form analytic engine; the
 * cycle-accurate SoftMC path produces identical outcomes
 * (property-tested) and is exercised by the integration tests and
 * examples.
 */

#ifndef RHS_CORE_TESTER_HH
#define RHS_CORE_TESTER_HH

#include <cstdint>
#include <vector>

#include "rhmodel/dimm.hh"
#include "rhmodel/pattern.hh"

namespace rhs::core
{

/** Paper constants (§4.2). */
inline constexpr std::uint64_t kBerHammers = 150'000;
inline constexpr std::uint64_t kMaxHammers = 512'000;
inline constexpr std::uint64_t kHcFirstInitial = 256'000;
inline constexpr std::uint64_t kHcFirstInitialDelta = 128'000;
inline constexpr std::uint64_t kHcFirstAccuracy = 512;
inline constexpr unsigned kRepetitions = 5;

/** Sentinel HCfirst for rows with no flip up to kMaxHammers. */
inline constexpr std::uint64_t kNotVulnerable = 0;

/** High-level measurement interface over one DIMM. */
class Tester
{
  public:
    /** @param dimm Module under test (not owned). */
    explicit Tester(rhmodel::SimulatedDimm &dimm) : dimm(dimm) {}

    rhmodel::SimulatedDimm &module() { return dimm; }
    const rhmodel::SimulatedDimm &module() const { return dimm; }

    /**
     * The cached per-row HCfirst curve of a double-sided attack on the
     * victim (see rhmodel::AnalyticEngine::rowEval). Every other query
     * of this class is a view of this curve; analyses that need flip
     * locations without a materialized RowBerResult consume it
     * directly via RowEval::forEachFlip.
     */
    rhmodel::RowEvalPtr
    rowEval(unsigned bank, unsigned victim_physical_row,
            const rhmodel::Conditions &conditions,
            const rhmodel::DataPattern &pattern, unsigned trial = 0) const;

    /**
     * BER test: double-sided hammer on the victim's neighbours, count
     * flips in the victim row.
     *
     * @param bank Bank under test.
     * @param victim_physical_row Victim (physical address).
     * @param conditions Temperature and aggressor timings.
     * @param pattern Data pattern written to V±[1..8].
     * @param hammers Hammer count (default: paper's 150K).
     * @param trial Repetition index.
     * @return Number of bit flips in the victim row.
     */
    unsigned berOfRow(unsigned bank, unsigned victim_physical_row,
                      const rhmodel::Conditions &conditions,
                      const rhmodel::DataPattern &pattern,
                      std::uint64_t hammers = kBerHammers,
                      unsigned trial = 0) const;

    /** BER test returning the flipped cell locations. */
    rhmodel::RowBerResult
    berDetail(unsigned bank, unsigned victim_physical_row,
              const rhmodel::Conditions &conditions,
              const rhmodel::DataPattern &pattern,
              std::uint64_t hammers = kBerHammers,
              unsigned trial = 0) const;

    /**
     * BER of a single-sided victim: hammer around `center` but count
     * flips in center+offset (offset ±2 for Fig. 4's side victims).
     */
    unsigned berAtDistance(unsigned bank, unsigned center, int offset,
                           const rhmodel::Conditions &conditions,
                           const rhmodel::DataPattern &pattern,
                           std::uint64_t hammers = kBerHammers,
                           unsigned trial = 0) const;

    /**
     * The paper's HCfirst binary search (§4.2): start at 256K, step
     * 128K halving to 512, decreasing on flip and increasing on no
     * flip; capped at 512K hammers.
     *
     * @return The smallest probed hammer count showing a flip, with
     *         512-hammer accuracy, or kNotVulnerable.
     */
    std::uint64_t
    hcFirstSearch(unsigned bank, unsigned victim_physical_row,
                  const rhmodel::Conditions &conditions,
                  const rhmodel::DataPattern &pattern,
                  unsigned trial = 0) const;

    /** Minimum HCfirst across kRepetitions trials (as in Fig. 11). */
    std::uint64_t
    hcFirstMin(unsigned bank, unsigned victim_physical_row,
               const rhmodel::Conditions &conditions,
               const rhmodel::DataPattern &pattern) const;

    /**
     * Find the module's worst-case data pattern (WCDP): the Table 1
     * pattern maximizing total flips over sample_rows (§4.2).
     */
    rhmodel::DataPattern
    findWorstCasePattern(unsigned bank,
                         const std::vector<unsigned> &sample_rows,
                         const rhmodel::Conditions &conditions) const;

  private:
    rhmodel::SimulatedDimm &dimm;
};

/**
 * The tested row sample of §4.2: the first, middle, and last
 * `per_region` rows of a bank (the paper uses 8K per region; benches
 * default to fewer). Rows touching the bank edge are excluded since a
 * double-sided victim needs both neighbours.
 */
std::vector<unsigned> testedRows(const dram::Geometry &geometry,
                                 unsigned per_region);

} // namespace rhs::core

#endif // RHS_CORE_TESTER_HH

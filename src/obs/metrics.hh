/**
 * @file
 * Low-overhead process metrics: counters, gauges, and fixed-bucket
 * histograms, grouped in named registries.
 *
 * The characterization engine runs millions of cache probes and pool
 * tasks per campaign, so the recording paths are built to disappear
 * into the noise of the work they measure:
 *
 *  - Counter::add is a wait-free fetch_add on one of kStripes
 *    cache-line-padded atomics, selected per thread, so concurrent
 *    increments of a hot counter (the RowEval cache hit counter under
 *    an 8-wide sweep) never bounce one cache line between cores;
 *  - Histogram::observe touches only the calling thread's stripe of
 *    bucket counts; value sums and extrema use CAS loops that contend
 *    only when a new extreme is observed;
 *  - Registry::snapshot() folds the stripes into plain structs (and,
 *    via obs/export.hh, into a stable report::Json document) without
 *    stopping writers.
 *
 * Determinism contract (tested in tests/obs_test.cc and the
 * obs_overhead bench): metrics observe the computation, they never
 * feed back into it — no result anywhere may depend on a metric
 * value, and a build with RHS_OBS=OFF (or a run with
 * setEnabled(false)) produces byte-identical experiment output.
 *
 * RHS_OBS=OFF compiles out the *timing* instrumentation (trace spans
 * and the clock reads behind duration histograms; see obs/trace.hh).
 * Counters, gauges, and histograms stay functional in every build:
 * the rhs-rpc/1 `stats` op is product surface, not telemetry, and its
 * counters must keep counting. setEnabled(false) is the runtime
 * kill-switch that freezes recording entirely (used by the
 * obs_overhead bench to measure the cost of the instrumentation).
 */

#ifndef RHS_OBS_METRICS_HH
#define RHS_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

// Defined (PUBLIC) by the rhs_obs_core CMake target: 1 unless the
// build was configured with -DRHS_OBS=OFF. Default to "on" for TUs
// compiled outside the CMake tree (editors, one-off tools).
#ifndef RHS_OBS_ENABLED
#define RHS_OBS_ENABLED 1
#endif

namespace rhs::obs
{

/** True when the build compiles in spans and timing instrumentation. */
inline constexpr bool kCompiledIn = RHS_OBS_ENABLED != 0;

/** Stripes per metric; a power of two keeps the modulo cheap. */
inline constexpr unsigned kStripes = 16;

/**
 * Runtime recording switch (default on). When off, add/set/observe and
 * span recording are no-ops; existing values freeze. Flipping it never
 * loses recorded data.
 */
bool enabled();
void setEnabled(bool on);

/** True when duration/span recording is active (compiled in AND
 *  enabled()): call sites gate their clock reads on this so a
 *  disabled build never pays a steady_clock read. */
inline bool
timingActive()
{
    return kCompiledIn && enabled();
}

namespace detail
{
/** The calling thread's stripe index (assigned round-robin once). */
unsigned threadStripe();

struct alignas(64) PaddedCount
{
    std::atomic<std::uint64_t> v{0};
};
} // namespace detail

/**
 * Monotonic counter. add() is wait-free (one fetch_add on the calling
 * thread's stripe); value() folds the stripes.
 *
 * Memory order: increments and folds are seq_cst, so two counters
 * read in sequence observe a cross-counter-consistent order — reading
 * `responses` before `enqueued` can never report more responses than
 * enqueues (the torn-read bug the serve stats op used to have).
 */
class Counter
{
  public:
    void
    add(std::uint64_t n = 1)
    {
        if (!enabled())
            return;
        stripes[detail::threadStripe()].v.fetch_add(n);
    }

    std::uint64_t
    value() const
    {
        std::uint64_t total = 0;
        for (const auto &stripe : stripes)
            total += stripe.v.load();
        return total;
    }

  private:
    detail::PaddedCount stripes[kStripes];
};

/** Last-writer-wins instantaneous value (also supports add/recordMax). */
class Gauge
{
  public:
    void
    set(std::int64_t v)
    {
        if (enabled())
            value_.store(v, std::memory_order_relaxed);
    }

    void
    add(std::int64_t delta)
    {
        if (enabled())
            value_.fetch_add(delta, std::memory_order_relaxed);
    }

    /** Raise the gauge to v if v exceeds the current value. */
    void
    recordMax(std::int64_t v)
    {
        if (!enabled())
            return;
        std::int64_t seen = value_.load(std::memory_order_relaxed);
        while (seen < v && !value_.compare_exchange_weak(
                               seen, v, std::memory_order_relaxed)) {
        }
    }

    std::int64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::int64_t> value_{0};
};

/**
 * Folded histogram state: `bounds` holds the inclusive upper edges of
 * the finite buckets, `counts` has one extra slot for the overflow
 * bucket (> bounds.back()). This is the shared quantile helper — the
 * serve stats op and the bench load generator both report latency
 * through HistogramData::quantile, so their numbers are comparable by
 * construction.
 */
struct HistogramData
{
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts; //!< bounds.size() + 1 slots.
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0; //!< 0 when count == 0.
    double max = 0.0; //!< 0 when count == 0.

    double mean() const { return count ? sum / double(count) : 0.0; }

    /**
     * The q-quantile (q in [0, 1]) with linear interpolation inside
     * the selected bucket, clamped to the observed [min, max]. A
     * deterministic pure function of the folded state, so two
     * consumers of the same snapshot always report the same value.
     */
    double quantile(double q) const;
};

/**
 * String-valued annotation metric (a Prometheus-style "info" label):
 * the selected SIMD kernel variant, a build identifier — facts that
 * are labels, not numbers. set() is last-writer-wins under a mutex;
 * reads snapshot the whole string, so concurrent set/value never
 * observe a torn value. Like counters, infos stay functional with
 * RHS_OBS=OFF but freeze under setEnabled(false).
 */
class Info
{
  public:
    void
    set(std::string v)
    {
        if (!enabled())
            return;
        std::lock_guard lock(mutex);
        value_ = std::move(v);
    }

    std::string
    value() const
    {
        std::lock_guard lock(mutex);
        return value_;
    }

  private:
    mutable std::mutex mutex;
    std::string value_;
};

/**
 * Fixed-bucket histogram; bucket bounds are fixed at registration so
 * observe() is one binary search plus striped atomic updates.
 */
class Histogram
{
  public:
    /** @param bounds Strictly increasing finite upper edges. */
    explicit Histogram(std::vector<double> bounds);

    /** Record one sample (clamped into the overflow bucket above
     *  bounds.back()). Thread-safe, stripe-local. */
    void observe(double x);

    /** Fold all stripes into a consistent-enough snapshot. */
    HistogramData snapshot() const;

    std::uint64_t
    count() const
    {
        return snapshot().count;
    }

  private:
    struct Stripe
    {
        std::vector<std::atomic<std::uint64_t>> buckets;
        std::atomic<double> sum{0.0};
        explicit Stripe(std::size_t slots) : buckets(slots) {}
    };

    std::vector<double> bounds;
    std::vector<std::unique_ptr<Stripe>> stripes;
    std::atomic<double> minSeen;
    std::atomic<double> maxSeen;
};

/** Upper edges first, first*factor, ... (count finite buckets). */
std::vector<double> exponentialBounds(double first, double factor,
                                      unsigned count);

/** The shared latency bucket layout: 0.05 ms .. ~52 s, x2 per bucket.
 *  Used by the serve end-to-end latency histogram and the load
 *  generator so both report from identical buckets. */
std::vector<double> latencyBoundsMs();

/** One registry's folded metrics, sorted by name (stable output). */
struct MetricsSnapshot
{
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, std::int64_t>> gauges;
    std::vector<std::pair<std::string, HistogramData>> histograms;
    std::vector<std::pair<std::string, std::string>> infos;
};

/**
 * A named family of metrics. Registration (the name lookup) takes a
 * mutex and returns a stable reference — callers on hot paths resolve
 * their metric once (function-local static or member) and keep the
 * reference. Registry::global() is the process-wide instance used by
 * the pool and the model caches; subsystems needing isolation (each
 * serve::Server instance) own their own Registry.
 */
class Registry
{
  public:
    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Info &info(const std::string &name);

    /** bounds are fixed by the first registration of `name`;
     *  subsequent calls return the existing histogram. */
    Histogram &histogram(const std::string &name,
                         std::vector<double> bounds);

    MetricsSnapshot snapshot() const;

    /** The process-wide registry (leaky singleton: references stay
     *  valid through static destruction). */
    static Registry &global();

  private:
    mutable std::mutex mutex;
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
    std::map<std::string, std::unique_ptr<Info>> infos;
};

} // namespace rhs::obs

#endif // RHS_OBS_METRICS_HH

/**
 * @file
 * Trace spans: named begin/end intervals recorded into per-thread
 * ring buffers, exportable as Chrome trace-event JSON (obs/export.hh,
 * `--trace-out` on rhs-bench and rhs-serve).
 *
 * A Span measures the lifetime of a scope:
 *
 *     void runCampaign(...) {
 *         OBS_SPAN("campaign.run");
 *         ...
 *     }
 *
 * Recording goes to the calling thread's fixed-capacity ring
 * (kTraceRingCapacity events); when a ring wraps, the oldest events
 * of *that thread* are overwritten — tracing is a bounded-memory
 * flight recorder, never an unbounded log. Each ring has its own
 * mutex that only its owner thread and an exporter ever take, so
 * recording is effectively uncontended; rings outlive their threads
 * (the sink holds strong references) so a trace can be exported after
 * worker threads joined.
 *
 * With RHS_OBS=OFF, OBS_SPAN compiles to nothing and the Span class
 * body is empty — zero code, zero clock reads. With the runtime
 * switch off (obs::setEnabled(false)) construction skips the clock
 * read and the span is never recorded.
 */

#ifndef RHS_OBS_TRACE_HH
#define RHS_OBS_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hh" // kCompiledIn, enabled().

namespace rhs::obs
{

/** Events each thread's ring holds before overwriting the oldest. */
inline constexpr std::size_t kTraceRingCapacity = 4096;

/** One completed span. Timestamps are microseconds since the process
 *  trace epoch (the first clock read of the process). */
struct SpanEvent
{
    std::string name;
    std::uint64_t beginUs = 0;
    std::uint64_t endUs = 0;
    std::uint32_t tid = 0;
};

/** Microseconds since the process trace epoch (monotonic). */
std::uint64_t traceNowUs();

/** Small dense id of the calling thread (first-use order). */
std::uint32_t traceThreadId();

/** Append a completed span to the calling thread's ring. */
void recordSpan(std::string name, std::uint64_t begin_us,
                std::uint64_t end_us);

/** All retained spans, oldest-first per thread, merged and sorted by
 *  (beginUs, tid, name) for a stable export. */
std::vector<SpanEvent> traceSnapshot();

/** Spans overwritten by ring wraparound since the last clearTrace(). */
std::uint64_t traceDropped();

/** Spans ever recorded (retained + dropped) since last clearTrace(). */
std::uint64_t traceRecorded();

/** Drop every retained span and reset the drop counters (tests, and
 *  long-lived servers exporting periodic traces). */
void clearTrace();

/** RAII span; see file comment. Usable with a dynamic name where
 *  OBS_SPAN's literal is too static (e.g. per-experiment spans). */
class Span
{
  public:
    explicit Span(std::string name)
    {
        if constexpr (kCompiledIn) {
            if (enabled()) {
                name_ = std::move(name);
                begin_ = traceNowUs();
                active_ = true;
            }
        }
    }

    ~Span()
    {
        if constexpr (kCompiledIn) {
            if (active_)
                recordSpan(std::move(name_), begin_, traceNowUs());
        }
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    std::string name_;
    std::uint64_t begin_ = 0;
    bool active_ = false;
};

} // namespace rhs::obs

#define RHS_OBS_CONCAT_INNER(a, b) a##b
#define RHS_OBS_CONCAT(a, b) RHS_OBS_CONCAT_INNER(a, b)

#if RHS_OBS_ENABLED
#define OBS_SPAN(name)                                                      \
    ::rhs::obs::Span RHS_OBS_CONCAT(rhs_obs_span_, __LINE__)(name)
#else
#define OBS_SPAN(name) ((void)0)
#endif

#endif // RHS_OBS_TRACE_HH

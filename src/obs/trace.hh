/**
 * @file
 * Trace spans: named begin/end intervals recorded into per-thread
 * ring buffers, exportable as Chrome trace-event JSON (obs/export.hh,
 * `--trace-out` on rhs-bench, rhs-serve, and rhs-route).
 *
 * A Span measures the lifetime of a scope:
 *
 *     void runCampaign(...) {
 *         OBS_SPAN("campaign.run");
 *         ...
 *     }
 *
 * Recording goes to the calling thread's fixed-capacity ring
 * (kTraceRingCapacity events); when a ring wraps, the oldest events
 * of *that thread* are overwritten — tracing is a bounded-memory
 * flight recorder, never an unbounded log. The first wraparound in a
 * process prints one warning line on stderr, and the running
 * recorded/dropped totals are surfaced by the serve/route `stats` op,
 * so silent span loss in a long-lived server is visible. Each ring
 * has its own mutex that only its owner thread and an exporter ever
 * take, so recording is effectively uncontended; rings outlive their
 * threads (the sink holds strong references) so a trace can be
 * exported after worker threads joined.
 *
 * Distributed tracing (PR 10): a span may carry a TraceContext — a
 * 128-bit trace id plus the parent span's process-local id — that
 * crosses process boundaries via the optional rhs-rpc/1 `trace`
 * request member. Every Span allocates a process-unique span id and,
 * for its lifetime, installs itself as the calling thread's current
 * parent, so nested spans chain into a tree without any explicit
 * plumbing; ContextScope installs a remote request's context around a
 * handler so that tree continues the caller's trace. Exporters stitch
 * the per-node rings into one fleet trace by (traceHi, traceLo), with
 * timestamps aligned through traceEpochUnixUs().
 *
 * With RHS_OBS=OFF, OBS_SPAN compiles to nothing and the Span class
 * body is empty — zero code, zero clock reads. With the runtime
 * switch off (obs::setEnabled(false)) construction skips the clock
 * read and the span is never recorded.
 */

#ifndef RHS_OBS_TRACE_HH
#define RHS_OBS_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hh" // kCompiledIn, enabled().

namespace rhs::obs
{

/** Events each thread's ring holds before overwriting the oldest. */
inline constexpr std::size_t kTraceRingCapacity = 4096;

/**
 * The cross-process trace context a span records under: the 128-bit
 * trace id ((hi, lo), 0/0 = no distributed trace) and the span id of
 * the parent (0 = root). Process-local span nesting uses the same
 * parent field with hi == lo == 0.
 */
struct TraceContext
{
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;
    std::uint64_t parent = 0;

    /** True when a distributed trace id is attached. */
    bool valid() const { return (hi | lo) != 0; }
};

/** One completed span. Timestamps are microseconds since the process
 *  trace epoch (the first clock read of the process). */
struct SpanEvent
{
    std::string name;
    std::uint64_t beginUs = 0;
    std::uint64_t endUs = 0;
    std::uint32_t tid = 0;
    std::uint64_t traceHi = 0;  //!< Trace id, high 64 bits (0 = none).
    std::uint64_t traceLo = 0;  //!< Trace id, low 64 bits.
    std::uint64_t spanId = 0;   //!< Process-local span id (0 = none).
    std::uint64_t parentId = 0; //!< Parent span id (0 = root).
};

/** Microseconds since the process trace epoch (monotonic). */
std::uint64_t traceNowUs();

/** The trace epoch as microseconds since the Unix epoch (sampled once
 *  from the realtime clock): `traceEpochUnixUs() + event.beginUs` puts
 *  spans from different processes on one comparable time axis, which
 *  is what lets a fleet trace stitch. */
std::uint64_t traceEpochUnixUs();

/** Small dense id of the calling thread (first-use order). */
std::uint32_t traceThreadId();

/** The next process-unique span id (monotonic from 1). */
std::uint64_t nextSpanId();

/** The calling thread's current trace context (what a new Span
 *  inherits). Cheap thread-local read. */
TraceContext currentTraceContext();

/** Replace the calling thread's current trace context. */
void setCurrentTraceContext(const TraceContext &context);

/** A fresh 128-bit trace id (unique within and across processes with
 *  overwhelming probability: time-seeded hi, counter lo). */
TraceContext makeTraceId();

/** The trace id as 32 lowercase hex characters (the rhs-rpc/1 wire
 *  form of the `trace.id` member). */
std::string traceIdToHex(std::uint64_t hi, std::uint64_t lo);

/** Parse 1..32 hex characters into a 128-bit trace id; false on an
 *  empty, overlong, or non-hex string. */
bool traceIdFromHex(const std::string &text, std::uint64_t &hi,
                    std::uint64_t &lo);

/** Append a completed span to the calling thread's ring. */
void recordSpan(std::string name, std::uint64_t begin_us,
                std::uint64_t end_us);

/** recordSpan carrying an explicit context and span id — used for
 *  cross-thread spans (a queue-wait interval is recorded by the thread
 *  that dequeues, under the request's context, not the recorder's). */
void recordSpanWith(std::string name, std::uint64_t begin_us,
                    std::uint64_t end_us, const TraceContext &context,
                    std::uint64_t span_id);

/** All retained spans, oldest-first per thread, merged and sorted by
 *  (beginUs, tid, name) for a stable export. */
std::vector<SpanEvent> traceSnapshot();

/** Spans overwritten by ring wraparound since the last clearTrace(). */
std::uint64_t traceDropped();

/** Spans ever recorded (retained + dropped) since last clearTrace(). */
std::uint64_t traceRecorded();

/** Drop every retained span and reset the drop counters (tests,
 *  long-lived servers exporting periodic traces, and the `trace_pull`
 *  op, which drains so two pulls never double-report a span). */
void clearTrace();

/**
 * Install a trace context on the calling thread for a scope (RAII):
 * the server's dispatcher wraps each request's execution in one so
 * every span recorded underneath — engine ops, kernel spans — chains
 * into the request's distributed trace. Restores the previous context
 * on destruction. Compiled out with RHS_OBS=OFF.
 */
class ContextScope
{
  public:
    explicit ContextScope(const TraceContext &context)
    {
        if constexpr (kCompiledIn) {
            saved_ = currentTraceContext();
            setCurrentTraceContext(context);
        }
    }

    ~ContextScope()
    {
        if constexpr (kCompiledIn)
            setCurrentTraceContext(saved_);
    }

    ContextScope(const ContextScope &) = delete;
    ContextScope &operator=(const ContextScope &) = delete;

  private:
    [[maybe_unused]] TraceContext saved_;
};

/** RAII span; see file comment. Usable with a dynamic name where
 *  OBS_SPAN's literal is too static (e.g. per-experiment spans).
 *  Inherits the thread's current TraceContext and installs its own
 *  span id as the current parent for its lifetime, so nested spans
 *  (and remote children via the propagated context) form a tree. */
class Span
{
  public:
    explicit Span(std::string name)
    {
        if constexpr (kCompiledIn) {
            if (enabled()) {
                name_ = std::move(name);
                begin_ = traceNowUs();
                context_ = currentTraceContext();
                id_ = nextSpanId();
                TraceContext inner = context_;
                inner.parent = id_;
                setCurrentTraceContext(inner);
                active_ = true;
            }
        }
    }

    ~Span()
    {
        if constexpr (kCompiledIn) {
            if (active_) {
                setCurrentTraceContext(context_);
                recordSpanWith(std::move(name_), begin_, traceNowUs(),
                               context_, id_);
            }
        }
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    /** This span's process-local id (0 when not recording). */
    std::uint64_t
    id() const
    {
        if constexpr (kCompiledIn)
            return active_ ? id_ : 0;
        else
            return 0;
    }

  private:
    std::string name_;
    std::uint64_t begin_ = 0;
    std::uint64_t id_ = 0;
    TraceContext context_;
    bool active_ = false;
};

} // namespace rhs::obs

#define RHS_OBS_CONCAT_INNER(a, b) a##b
#define RHS_OBS_CONCAT(a, b) RHS_OBS_CONCAT_INNER(a, b)

#if RHS_OBS_ENABLED
#define OBS_SPAN(name)                                                      \
    ::rhs::obs::Span RHS_OBS_CONCAT(rhs_obs_span_, __LINE__)(name)
#else
#define OBS_SPAN(name) ((void)0)
#endif

#endif // RHS_OBS_TRACE_HH

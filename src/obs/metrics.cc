#include "obs/metrics.hh"

#include <algorithm>
#include <cstdlib>
#include <limits>

namespace rhs::obs
{

namespace
{

std::atomic<bool> g_enabled{true};

} // namespace

bool
enabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

void
setEnabled(bool on)
{
    g_enabled.store(on, std::memory_order_relaxed);
}

namespace detail
{

unsigned
threadStripe()
{
    static std::atomic<unsigned> next{0};
    thread_local const unsigned stripe =
        next.fetch_add(1, std::memory_order_relaxed) % kStripes;
    return stripe;
}

} // namespace detail

double
HistogramData::quantile(double q) const
{
    if (count == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const double target = q * static_cast<double>(count);

    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        if (counts[i] == 0)
            continue;
        const double before = static_cast<double>(cumulative);
        cumulative += counts[i];
        if (static_cast<double>(cumulative) < target)
            continue;
        // Interpolate inside bucket i. The first bucket's lower edge
        // and the overflow bucket's upper edge are the observed
        // extrema — the histogram covers [min, max] exactly.
        const double lower = i == 0 ? min : bounds[i - 1];
        const double upper = i < bounds.size() ? bounds[i] : max;
        const double width = upper > lower ? upper - lower : 0.0;
        const double within =
            counts[i] > 0
                ? (target - before) / static_cast<double>(counts[i])
                : 0.0;
        return std::clamp(lower + width * within, min, max);
    }
    return max;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds(std::move(bounds)),
      minSeen(std::numeric_limits<double>::infinity()),
      maxSeen(-std::numeric_limits<double>::infinity())
{
    if (this->bounds.empty() ||
        !std::is_sorted(this->bounds.begin(), this->bounds.end()))
        std::abort(); // Registration bug; no logging dep here.
    stripes.reserve(kStripes);
    for (unsigned s = 0; s < kStripes; ++s)
        stripes.push_back(
            std::make_unique<Stripe>(this->bounds.size() + 1));
}

void
Histogram::observe(double x)
{
    if (!enabled())
        return;
    auto &stripe = *stripes[detail::threadStripe()];
    const auto it =
        std::lower_bound(bounds.begin(), bounds.end(), x);
    const std::size_t bucket =
        static_cast<std::size_t>(it - bounds.begin());
    stripe.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
    stripe.sum.fetch_add(x, std::memory_order_relaxed);

    double seen = minSeen.load(std::memory_order_relaxed);
    while (x < seen && !minSeen.compare_exchange_weak(
                           seen, x, std::memory_order_relaxed)) {
    }
    seen = maxSeen.load(std::memory_order_relaxed);
    while (x > seen && !maxSeen.compare_exchange_weak(
                           seen, x, std::memory_order_relaxed)) {
    }
}

HistogramData
Histogram::snapshot() const
{
    HistogramData data;
    data.bounds = bounds;
    data.counts.assign(bounds.size() + 1, 0);
    for (const auto &stripe : stripes) {
        for (std::size_t b = 0; b < data.counts.size(); ++b)
            data.counts[b] +=
                stripe->buckets[b].load(std::memory_order_relaxed);
        data.sum += stripe->sum.load(std::memory_order_relaxed);
    }
    for (auto c : data.counts)
        data.count += c;
    if (data.count > 0) {
        data.min = minSeen.load(std::memory_order_relaxed);
        data.max = maxSeen.load(std::memory_order_relaxed);
    } else {
        data.sum = 0.0; // Never report -0.0 or rounding residue.
    }
    return data;
}

std::vector<double>
exponentialBounds(double first, double factor, unsigned count)
{
    std::vector<double> bounds;
    bounds.reserve(count);
    double edge = first;
    for (unsigned i = 0; i < count; ++i) {
        bounds.push_back(edge);
        edge *= factor;
    }
    return bounds;
}

std::vector<double>
latencyBoundsMs()
{
    return exponentialBounds(0.05, 2.0, 21);
}

Counter &
Registry::counter(const std::string &name)
{
    std::lock_guard lock(mutex);
    auto &slot = counters[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
Registry::gauge(const std::string &name)
{
    std::lock_guard lock(mutex);
    auto &slot = gauges[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Info &
Registry::info(const std::string &name)
{
    std::lock_guard lock(mutex);
    auto &slot = infos[name];
    if (!slot)
        slot = std::make_unique<Info>();
    return *slot;
}

Histogram &
Registry::histogram(const std::string &name, std::vector<double> bounds)
{
    std::lock_guard lock(mutex);
    auto &slot = histograms[name];
    if (!slot)
        slot = std::make_unique<Histogram>(std::move(bounds));
    return *slot;
}

MetricsSnapshot
Registry::snapshot() const
{
    MetricsSnapshot snap;
    std::lock_guard lock(mutex);
    // std::map iterates in name order, so the snapshot (and the JSON
    // document folded from it) is stable across runs and registration
    // orders.
    for (const auto &[name, counter] : counters)
        snap.counters.emplace_back(name, counter->value());
    for (const auto &[name, gauge] : gauges)
        snap.gauges.emplace_back(name, gauge->value());
    for (const auto &[name, histogram] : histograms)
        snap.histograms.emplace_back(name, histogram->snapshot());
    for (const auto &[name, info] : infos)
        snap.infos.emplace_back(name, info->value());
    return snap;
}

Registry &
Registry::global()
{
    static Registry *instance = new Registry;
    return *instance;
}

} // namespace rhs::obs

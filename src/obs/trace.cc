#include "obs/trace.hh"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>

namespace rhs::obs
{

namespace
{

using Clock = std::chrono::steady_clock;

/** One thread's bounded span store. The mutex is taken by the owner
 *  thread (record) and exporters (snapshot/clear) only. */
struct TraceRing
{
    std::mutex mutex;
    std::uint32_t tid = 0;
    std::vector<SpanEvent> slots; //!< Ring storage, grows to capacity.
    std::size_t next = 0;         //!< Overwrite position once full.
    std::uint64_t recorded = 0;   //!< Spans ever pushed.
};

struct TraceSink
{
    std::mutex mutex;
    std::vector<std::shared_ptr<TraceRing>> rings;
    std::atomic<std::uint32_t> nextTid{0};
};

TraceSink &
sink()
{
    static TraceSink *instance = new TraceSink;
    return *instance;
}

Clock::time_point
traceEpoch()
{
    static const Clock::time_point epoch = Clock::now();
    return epoch;
}

TraceRing &
threadRing()
{
    thread_local std::shared_ptr<TraceRing> ring = [] {
        auto created = std::make_shared<TraceRing>();
        auto &s = sink();
        created->tid =
            s.nextTid.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard lock(s.mutex);
        s.rings.push_back(created);
        return created;
    }();
    return *ring;
}

} // namespace

std::uint64_t
traceNowUs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            Clock::now() - traceEpoch())
            .count());
}

std::uint32_t
traceThreadId()
{
    return threadRing().tid;
}

void
recordSpan(std::string name, std::uint64_t begin_us,
           std::uint64_t end_us)
{
    auto &ring = threadRing();
    SpanEvent event{std::move(name), begin_us, end_us, ring.tid};
    std::lock_guard lock(ring.mutex);
    if (ring.slots.size() < kTraceRingCapacity) {
        ring.slots.push_back(std::move(event));
    } else {
        // Wraparound: overwrite the oldest retained span.
        ring.slots[ring.next] = std::move(event);
        ring.next = (ring.next + 1) % kTraceRingCapacity;
    }
    ++ring.recorded;
}

std::vector<SpanEvent>
traceSnapshot()
{
    std::vector<SpanEvent> events;
    {
        auto &s = sink();
        std::lock_guard sink_lock(s.mutex);
        for (const auto &ring : s.rings) {
            std::lock_guard ring_lock(ring->mutex);
            if (ring->slots.empty())
                continue;
            // Oldest-first: [next, end) then [0, next).
            for (std::size_t i = 0; i < ring->slots.size(); ++i) {
                const std::size_t at =
                    (ring->next + i) % ring->slots.size();
                events.push_back(ring->slots[at]);
            }
        }
    }
    std::sort(events.begin(), events.end(),
              [](const SpanEvent &a, const SpanEvent &b) {
                  if (a.beginUs != b.beginUs)
                      return a.beginUs < b.beginUs;
                  if (a.tid != b.tid)
                      return a.tid < b.tid;
                  return a.name < b.name;
              });
    return events;
}

std::uint64_t
traceDropped()
{
    std::uint64_t dropped = 0;
    auto &s = sink();
    std::lock_guard sink_lock(s.mutex);
    for (const auto &ring : s.rings) {
        std::lock_guard ring_lock(ring->mutex);
        dropped += ring->recorded - ring->slots.size();
    }
    return dropped;
}

std::uint64_t
traceRecorded()
{
    std::uint64_t recorded = 0;
    auto &s = sink();
    std::lock_guard sink_lock(s.mutex);
    for (const auto &ring : s.rings) {
        std::lock_guard ring_lock(ring->mutex);
        recorded += ring->recorded;
    }
    return recorded;
}

void
clearTrace()
{
    auto &s = sink();
    std::lock_guard sink_lock(s.mutex);
    for (const auto &ring : s.rings) {
        std::lock_guard ring_lock(ring->mutex);
        ring->slots.clear();
        ring->next = 0;
        ring->recorded = 0;
    }
}

} // namespace rhs::obs

#include "obs/trace.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>

namespace rhs::obs
{

namespace
{

using Clock = std::chrono::steady_clock;

/** One thread's bounded span store. The mutex is taken by the owner
 *  thread (record) and exporters (snapshot/clear) only. */
struct TraceRing
{
    std::mutex mutex;
    std::uint32_t tid = 0;
    std::vector<SpanEvent> slots; //!< Ring storage, grows to capacity.
    std::size_t next = 0;         //!< Overwrite position once full.
    std::uint64_t recorded = 0;   //!< Spans ever pushed.
};

struct TraceSink
{
    std::mutex mutex;
    std::vector<std::shared_ptr<TraceRing>> rings;
    std::atomic<std::uint32_t> nextTid{0};
    std::atomic<bool> wrapWarned{false};
};

TraceSink &
sink()
{
    static TraceSink *instance = new TraceSink;
    return *instance;
}

Clock::time_point
traceEpoch()
{
    static const Clock::time_point epoch = Clock::now();
    return epoch;
}

TraceRing &
threadRing()
{
    thread_local std::shared_ptr<TraceRing> ring = [] {
        auto created = std::make_shared<TraceRing>();
        auto &s = sink();
        created->tid =
            s.nextTid.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard lock(s.mutex);
        s.rings.push_back(created);
        return created;
    }();
    return *ring;
}

/** splitmix64: turns a weak time seed into 64 well-mixed bits. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

void
pushEvent(SpanEvent event)
{
    auto &ring = threadRing();
    event.tid = ring.tid;
    std::lock_guard lock(ring.mutex);
    if (ring.slots.size() < kTraceRingCapacity) {
        ring.slots.push_back(std::move(event));
    } else {
        // Wraparound: overwrite the oldest retained span. Warn once
        // per process so long-lived servers notice the flight
        // recorder looping (stderr directly: this TU is rhs_obs_core,
        // which must not depend on util logging).
        if (!sink().wrapWarned.exchange(true))
            std::fprintf(stderr,
                         "rhs-obs: warning: trace ring wrapped "
                         "(capacity %zu spans/thread); oldest spans "
                         "are being overwritten — see trace counters "
                         "in the stats op\n",
                         kTraceRingCapacity);
        ring.slots[ring.next] = std::move(event);
        ring.next = (ring.next + 1) % kTraceRingCapacity;
    }
    ++ring.recorded;
}

} // namespace

std::uint64_t
traceNowUs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            Clock::now() - traceEpoch())
            .count());
}

std::uint64_t
traceEpochUnixUs()
{
    // Sampled once: realtime "now" minus the monotonic microseconds
    // already elapsed since the trace epoch. Every later call returns
    // the same value, so span timestamps from one process always map
    // to one consistent absolute axis.
    static const std::uint64_t epoch_unix_us = [] {
        const auto now_unix_us =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::system_clock::now().time_since_epoch())
                .count();
        const std::uint64_t elapsed = traceNowUs();
        const auto unix_us = static_cast<std::uint64_t>(now_unix_us);
        return unix_us > elapsed ? unix_us - elapsed : 0;
    }();
    return epoch_unix_us;
}

std::uint32_t
traceThreadId()
{
    return threadRing().tid;
}

std::uint64_t
nextSpanId()
{
    static std::atomic<std::uint64_t> next{0};
    return next.fetch_add(1, std::memory_order_relaxed) + 1;
}

namespace
{
thread_local TraceContext currentContext;
} // namespace

TraceContext
currentTraceContext()
{
    return currentContext;
}

void
setCurrentTraceContext(const TraceContext &context)
{
    currentContext = context;
}

TraceContext
makeTraceId()
{
    // hi identifies the process (time-seeded, well mixed), lo counts
    // within it — collisions across a fleet need two processes to
    // draw the same 64-bit hi.
    static const std::uint64_t process_hi = [] {
        const auto seed = static_cast<std::uint64_t>(
            std::chrono::system_clock::now()
                .time_since_epoch()
                .count());
        const std::uint64_t mixed =
            mix64(seed ^ mix64(traceNowUs() + 0x5bd1e995u));
        return mixed != 0 ? mixed : 0x1ull; // hi==0 would read as "none".
    }();
    static std::atomic<std::uint64_t> next{0};
    TraceContext context;
    context.hi = process_hi;
    context.lo = next.fetch_add(1, std::memory_order_relaxed) + 1;
    return context;
}

std::string
traceIdToHex(std::uint64_t hi, std::uint64_t lo)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(32, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[hi & 0xf];
        out[static_cast<std::size_t>(16 + i)] = digits[lo & 0xf];
        hi >>= 4;
        lo >>= 4;
    }
    return out;
}

bool
traceIdFromHex(const std::string &text, std::uint64_t &hi,
               std::uint64_t &lo)
{
    if (text.empty() || text.size() > 32)
        return false;
    std::uint64_t parsed_hi = 0, parsed_lo = 0;
    for (const char c : text) {
        unsigned nibble = 0;
        if (c >= '0' && c <= '9')
            nibble = static_cast<unsigned>(c - '0');
        else if (c >= 'a' && c <= 'f')
            nibble = static_cast<unsigned>(c - 'a') + 10;
        else if (c >= 'A' && c <= 'F')
            nibble = static_cast<unsigned>(c - 'A') + 10;
        else
            return false;
        parsed_hi = (parsed_hi << 4) | (parsed_lo >> 60);
        parsed_lo = (parsed_lo << 4) | nibble;
    }
    hi = parsed_hi;
    lo = parsed_lo;
    return true;
}

void
recordSpan(std::string name, std::uint64_t begin_us,
           std::uint64_t end_us)
{
    SpanEvent event;
    event.name = std::move(name);
    event.beginUs = begin_us;
    event.endUs = end_us;
    pushEvent(std::move(event));
}

void
recordSpanWith(std::string name, std::uint64_t begin_us,
               std::uint64_t end_us, const TraceContext &context,
               std::uint64_t span_id)
{
    SpanEvent event;
    event.name = std::move(name);
    event.beginUs = begin_us;
    event.endUs = end_us;
    event.traceHi = context.hi;
    event.traceLo = context.lo;
    event.spanId = span_id;
    event.parentId = context.parent;
    pushEvent(std::move(event));
}

std::vector<SpanEvent>
traceSnapshot()
{
    std::vector<SpanEvent> events;
    {
        auto &s = sink();
        std::lock_guard sink_lock(s.mutex);
        for (const auto &ring : s.rings) {
            std::lock_guard ring_lock(ring->mutex);
            if (ring->slots.empty())
                continue;
            // Oldest-first: [next, end) then [0, next).
            for (std::size_t i = 0; i < ring->slots.size(); ++i) {
                const std::size_t at =
                    (ring->next + i) % ring->slots.size();
                events.push_back(ring->slots[at]);
            }
        }
    }
    std::sort(events.begin(), events.end(),
              [](const SpanEvent &a, const SpanEvent &b) {
                  if (a.beginUs != b.beginUs)
                      return a.beginUs < b.beginUs;
                  if (a.tid != b.tid)
                      return a.tid < b.tid;
                  return a.name < b.name;
              });
    return events;
}

std::uint64_t
traceDropped()
{
    std::uint64_t dropped = 0;
    auto &s = sink();
    std::lock_guard sink_lock(s.mutex);
    for (const auto &ring : s.rings) {
        std::lock_guard ring_lock(ring->mutex);
        dropped += ring->recorded - ring->slots.size();
    }
    return dropped;
}

std::uint64_t
traceRecorded()
{
    std::uint64_t recorded = 0;
    auto &s = sink();
    std::lock_guard sink_lock(s.mutex);
    for (const auto &ring : s.rings) {
        std::lock_guard ring_lock(ring->mutex);
        recorded += ring->recorded;
    }
    return recorded;
}

void
clearTrace()
{
    auto &s = sink();
    std::lock_guard sink_lock(s.mutex);
    for (const auto &ring : s.rings) {
        std::lock_guard ring_lock(ring->mutex);
        ring->slots.clear();
        ring->next = 0;
        ring->recorded = 0;
    }
}

} // namespace rhs::obs

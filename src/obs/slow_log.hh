/**
 * @file
 * Bounded slow-request exemplar log.
 *
 * Aggregated histograms say *that* a p99 moved; an exemplar says
 * *which request* did it. A SlowLog keeps the most recent
 * `capacity` requests whose total latency exceeded a threshold
 * (`--slow-ms` on rhs-serve and rhs-route; 0 disables), each with its
 * op, a stable digest of the request body (so identical pathological
 * queries are recognizable without logging parameters verbatim), its
 * per-hop timings, and its trace id when the request carried one —
 * enough to jump from a stats snapshot straight into the stitched
 * fleet trace.
 *
 * The log is mutex-guarded (recording is once per *slow* request, not
 * per request, so contention is irrelevant) and exposed as a member of
 * the serve/route `stats` payload. Recording honors the obs runtime
 * switch via the caller: servers only stamp the timings that feed
 * this log while obs::timingActive(), so an RHS_OBS=OFF build keeps
 * an empty log.
 */

#ifndef RHS_OBS_SLOW_LOG_HH
#define RHS_OBS_SLOW_LOG_HH

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "report/json.hh"

namespace rhs::obs
{

/** FNV-1a of a request body: the stable params digest logged in
 *  place of the raw request. */
std::uint64_t paramsDigest(const std::string &body);

/** The bounded exemplar log (see file comment). */
class SlowLog
{
  public:
    /** Entries retained (newest win). */
    static constexpr std::size_t kDefaultCapacity = 64;

    struct Entry
    {
        std::uint64_t unixUs = 0; //!< Completion wall-clock time.
        std::string op;
        std::uint64_t digest = 0; //!< paramsDigest of the body.
        double totalMs = 0.0;
        std::string traceId; //!< 32-hex trace id, "" when untraced.
        //! Named per-hop timings, e.g. {"queue_ms", 3.1}.
        std::vector<std::pair<std::string, double>> hops;
    };

    explicit SlowLog(std::size_t capacity = kDefaultCapacity);

    /** Threshold in milliseconds; 0 disables recording. */
    void setThresholdMs(double ms);
    double thresholdMs() const;

    /** True when `total_ms` qualifies (threshold > 0 and exceeded) —
     *  callers check this before assembling an Entry. */
    bool qualifies(double total_ms) const;

    /** Append one exemplar (oldest evicted beyond capacity). */
    void record(Entry entry);

    /** Entries ever recorded (including evicted ones). */
    std::uint64_t recordedTotal() const;

    /**
     * The stats-op payload: {threshold_ms, capacity, recorded,
     * entries: [{unix_us, op, params_digest, total_ms, trace?,
     * hops: {...}}, ...]} — oldest first.
     */
    report::Json toJson() const;

  private:
    mutable std::mutex mutex;
    std::size_t capacity;
    double thresholdMs_ = 0.0;
    std::uint64_t recorded = 0;
    std::deque<Entry> entries;
};

} // namespace rhs::obs

#endif // RHS_OBS_SLOW_LOG_HH

#include "obs/export.hh"

#include "obs/trace.hh"
#include "report/writer.hh"

namespace rhs::obs
{

namespace
{

report::Json
histogramJson(const HistogramData &data)
{
    auto json = report::Json::object();
    json.set("count", data.count);
    json.set("sum", data.sum);
    json.set("min", data.min);
    json.set("max", data.max);
    json.set("mean", data.mean());
    json.set("p50", data.quantile(0.50));
    json.set("p99", data.quantile(0.99));
    auto buckets = report::Json::array();
    for (std::size_t b = 0; b < data.counts.size(); ++b) {
        auto bucket = report::Json::object();
        if (b < data.bounds.size())
            bucket.set("le", data.bounds[b]);
        else
            bucket.set("le", "+Inf");
        bucket.set("count", data.counts[b]);
        buckets.push(std::move(bucket));
    }
    json.set("buckets", std::move(buckets));
    return json;
}

} // namespace

report::Json
metricsJson(const MetricsSnapshot &snapshot)
{
    auto json = report::Json::object();
    json.set("compiled", kCompiledIn);
    json.set("enabled", enabled());
    auto counters = report::Json::object();
    for (const auto &[name, value] : snapshot.counters)
        counters.set(name, value);
    json.set("counters", std::move(counters));
    auto gauges = report::Json::object();
    for (const auto &[name, value] : snapshot.gauges)
        gauges.set(name, value);
    json.set("gauges", std::move(gauges));
    auto histograms = report::Json::object();
    for (const auto &[name, data] : snapshot.histograms)
        histograms.set(name, histogramJson(data));
    json.set("histograms", std::move(histograms));
    auto infos = report::Json::object();
    for (const auto &[name, value] : snapshot.infos)
        infos.set(name, value);
    json.set("info", std::move(infos));
    return json;
}

report::Json
registryJson(const Registry &registry)
{
    return metricsJson(registry.snapshot());
}

report::Json
chromeTraceJson()
{
    auto root = report::Json::object();
    root.set("displayTimeUnit", "ms");
    auto events = report::Json::array();
    for (const auto &span : traceSnapshot()) {
        auto event = report::Json::object();
        event.set("name", span.name);
        event.set("ph", "X");
        event.set("ts", static_cast<double>(span.beginUs));
        event.set("dur",
                  static_cast<double>(span.endUs - span.beginUs));
        event.set("pid", 1);
        event.set("tid", span.tid);
        events.push(std::move(event));
    }
    root.set("traceEvents", std::move(events));
    auto other = report::Json::object();
    other.set("recorded", traceRecorded());
    other.set("dropped", traceDropped());
    other.set("ring_capacity",
              static_cast<std::uint64_t>(kTraceRingCapacity));
    root.set("otherData", std::move(other));
    return root;
}

void
writeChromeTrace(const std::string &path)
{
    report::JsonWriter().writeFile(path, chromeTraceJson());
}

} // namespace rhs::obs

#include "obs/export.hh"

#include <algorithm>
#include <map>

#include "report/writer.hh"

namespace rhs::obs
{

report::Json
histogramJson(const HistogramData &data)
{
    auto json = report::Json::object();
    json.set("count", data.count);
    json.set("sum", data.sum);
    json.set("min", data.min);
    json.set("max", data.max);
    json.set("mean", data.mean());
    json.set("p50", data.quantile(0.50));
    json.set("p99", data.quantile(0.99));
    auto buckets = report::Json::array();
    for (std::size_t b = 0; b < data.counts.size(); ++b) {
        auto bucket = report::Json::object();
        if (b < data.bounds.size())
            bucket.set("le", data.bounds[b]);
        else
            bucket.set("le", "+Inf");
        bucket.set("count", data.counts[b]);
        buckets.push(std::move(bucket));
    }
    json.set("buckets", std::move(buckets));
    return json;
}

bool
histogramFromJson(const report::Json &json, HistogramData &out)
{
    if (json.type() != report::Json::Type::Object)
        return false;
    const auto *count = json.find("count");
    const auto *sum = json.find("sum");
    const auto *buckets = json.find("buckets");
    if (count == nullptr || count->type() != report::Json::Type::Int ||
        count->asInt() < 0 || sum == nullptr || !sum->isNumber() ||
        buckets == nullptr ||
        buckets->type() != report::Json::Type::Array)
        return false;
    HistogramData parsed;
    parsed.count = static_cast<std::uint64_t>(count->asInt());
    parsed.sum = sum->asDouble();
    if (const auto *min = json.find("min");
        min != nullptr && min->isNumber())
        parsed.min = min->asDouble();
    if (const auto *max = json.find("max");
        max != nullptr && max->isNumber())
        parsed.max = max->asDouble();
    for (std::size_t b = 0; b < buckets->size(); ++b) {
        const auto &bucket = buckets->at(b);
        if (bucket.type() != report::Json::Type::Object)
            return false;
        const auto *le = bucket.find("le");
        const auto *n = bucket.find("count");
        if (le == nullptr || n == nullptr ||
            n->type() != report::Json::Type::Int || n->asInt() < 0)
            return false;
        // The overflow bucket's edge serializes as the string "+Inf"
        // and must be the last entry.
        if (le->isNumber()) {
            if (b + 1 == buckets->size())
                return false; // Missing overflow bucket.
            parsed.bounds.push_back(le->asDouble());
        } else if (le->type() != report::Json::Type::String ||
                   le->asString() != "+Inf" ||
                   b + 1 != buckets->size()) {
            return false;
        }
        parsed.counts.push_back(
            static_cast<std::uint64_t>(n->asInt()));
    }
    if (!parsed.counts.empty() &&
        parsed.counts.size() != parsed.bounds.size() + 1)
        return false;
    out = std::move(parsed);
    return true;
}

HistogramData
mergeHistograms(const std::vector<HistogramData> &parts)
{
    HistogramData merged;
    // Reference layout: the first part that has buckets at all.
    for (const auto &part : parts) {
        if (!part.counts.empty()) {
            merged.bounds = part.bounds;
            merged.counts.assign(part.counts.size(), 0);
            break;
        }
    }
    bool any_samples = false;
    for (const auto &part : parts) {
        merged.count += part.count;
        merged.sum += part.sum;
        if (part.count > 0) {
            if (!any_samples) {
                merged.min = part.min;
                merged.max = part.max;
                any_samples = true;
            } else {
                merged.min = std::min(merged.min, part.min);
                merged.max = std::max(merged.max, part.max);
            }
        }
        // Bucket-wise only for layout-identical parts; a shard with a
        // different layout (version skew) still contributed its
        // count/sum/min/max above.
        if (part.counts.size() == merged.counts.size() &&
            part.bounds == merged.bounds)
            for (std::size_t b = 0; b < part.counts.size(); ++b)
                merged.counts[b] += part.counts[b];
    }
    return merged;
}

report::Json
metricsJson(const MetricsSnapshot &snapshot)
{
    auto json = report::Json::object();
    json.set("compiled", kCompiledIn);
    json.set("enabled", enabled());
    auto counters = report::Json::object();
    for (const auto &[name, value] : snapshot.counters)
        counters.set(name, value);
    json.set("counters", std::move(counters));
    auto gauges = report::Json::object();
    for (const auto &[name, value] : snapshot.gauges)
        gauges.set(name, value);
    json.set("gauges", std::move(gauges));
    auto histograms = report::Json::object();
    for (const auto &[name, data] : snapshot.histograms)
        histograms.set(name, histogramJson(data));
    json.set("histograms", std::move(histograms));
    auto infos = report::Json::object();
    for (const auto &[name, value] : snapshot.infos)
        infos.set(name, value);
    json.set("info", std::move(infos));
    return json;
}

report::Json
registryJson(const Registry &registry)
{
    return metricsJson(registry.snapshot());
}

report::Json
mergeRegistryJson(
    const std::vector<std::pair<std::string, report::Json>> &parts)
{
    // std::map keys keep every merged section sorted by metric name,
    // matching metricsJson's sorted output.
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string,
             std::vector<std::pair<std::string, report::Json>>>
        gauges;
    std::map<std::string, std::vector<HistogramData>> histograms;
    std::map<std::string,
             std::vector<std::pair<std::string, report::Json>>>
        infos;
    auto labels = report::Json::array();
    for (const auto &[label, doc] : parts) {
        labels.push(label);
        if (doc.type() != report::Json::Type::Object)
            continue;
        if (const auto *section = doc.find("counters");
            section != nullptr &&
            section->type() == report::Json::Type::Object)
            for (const auto &[name, value] : section->members())
                if (value.type() == report::Json::Type::Int &&
                    value.asInt() >= 0)
                    counters[name] +=
                        static_cast<std::uint64_t>(value.asInt());
        if (const auto *section = doc.find("gauges");
            section != nullptr &&
            section->type() == report::Json::Type::Object)
            for (const auto &[name, value] : section->members())
                gauges[name].emplace_back(label, value);
        if (const auto *section = doc.find("histograms");
            section != nullptr &&
            section->type() == report::Json::Type::Object)
            for (const auto &[name, value] : section->members()) {
                HistogramData data;
                if (histogramFromJson(value, data))
                    histograms[name].push_back(std::move(data));
            }
        if (const auto *section = doc.find("info");
            section != nullptr &&
            section->type() == report::Json::Type::Object)
            for (const auto &[name, value] : section->members())
                infos[name].emplace_back(label, value);
    }

    auto json = report::Json::object();
    json.set("replicas", std::move(labels));
    auto counters_json = report::Json::object();
    for (const auto &[name, value] : counters)
        counters_json.set(name, value);
    json.set("counters", std::move(counters_json));
    auto gauges_json = report::Json::object();
    for (const auto &[name, values] : gauges) {
        auto per_replica = report::Json::object();
        for (const auto &[label, value] : values)
            per_replica.set(label, value);
        gauges_json.set(name, std::move(per_replica));
    }
    json.set("gauges", std::move(gauges_json));
    auto histograms_json = report::Json::object();
    for (const auto &[name, values] : histograms)
        histograms_json.set(name,
                            histogramJson(mergeHistograms(values)));
    json.set("histograms", std::move(histograms_json));
    auto infos_json = report::Json::object();
    for (const auto &[name, values] : infos) {
        auto per_replica = report::Json::object();
        for (const auto &[label, value] : values)
            per_replica.set(label, value);
        infos_json.set(name, std::move(per_replica));
    }
    json.set("info", std::move(infos_json));
    return json;
}

report::Json
spansJson(const std::vector<SpanEvent> &spans, std::size_t max_spans,
          bool &truncated)
{
    truncated = spans.size() > max_spans;
    const std::size_t start =
        truncated ? spans.size() - max_spans : 0;
    auto array = report::Json::array();
    for (std::size_t i = start; i < spans.size(); ++i) {
        const SpanEvent &span = spans[i];
        auto entry = report::Json::object();
        entry.set("name", span.name);
        entry.set("begin_us", span.beginUs);
        entry.set("end_us", span.endUs);
        entry.set("tid", span.tid);
        if (span.traceHi != 0 || span.traceLo != 0)
            entry.set("trace",
                      traceIdToHex(span.traceHi, span.traceLo));
        if (span.spanId != 0)
            entry.set("span", span.spanId);
        if (span.parentId != 0)
            entry.set("parent", span.parentId);
        array.push(std::move(entry));
    }
    return array;
}

bool
nodeTraceFromJson(const report::Json &json, NodeTrace &out)
{
    if (json.type() != report::Json::Type::Object)
        return false;
    const auto *node = json.find("node");
    const auto *spans = json.find("spans");
    if (node == nullptr ||
        node->type() != report::Json::Type::String ||
        spans == nullptr ||
        spans->type() != report::Json::Type::Array)
        return false;
    NodeTrace parsed;
    parsed.node = node->asString();
    if (const auto *epoch = json.find("epoch_unix_us");
        epoch != nullptr && epoch->type() == report::Json::Type::Int)
        parsed.epochUnixUs =
            static_cast<std::uint64_t>(epoch->asInt());
    if (const auto *recorded = json.find("recorded");
        recorded != nullptr &&
        recorded->type() == report::Json::Type::Int)
        parsed.recorded =
            static_cast<std::uint64_t>(recorded->asInt());
    if (const auto *dropped = json.find("dropped");
        dropped != nullptr &&
        dropped->type() == report::Json::Type::Int)
        parsed.dropped = static_cast<std::uint64_t>(dropped->asInt());
    if (const auto *truncated = json.find("truncated");
        truncated != nullptr &&
        truncated->type() == report::Json::Type::Bool)
        parsed.truncated = truncated->asBool();
    for (std::size_t i = 0; i < spans->size(); ++i) {
        const auto &entry = spans->at(i);
        if (entry.type() != report::Json::Type::Object)
            return false;
        const auto *name = entry.find("name");
        const auto *begin = entry.find("begin_us");
        const auto *end = entry.find("end_us");
        const auto *tid = entry.find("tid");
        if (name == nullptr ||
            name->type() != report::Json::Type::String ||
            begin == nullptr ||
            begin->type() != report::Json::Type::Int ||
            end == nullptr ||
            end->type() != report::Json::Type::Int ||
            tid == nullptr || tid->type() != report::Json::Type::Int)
            return false;
        SpanEvent span;
        span.name = name->asString();
        span.beginUs = static_cast<std::uint64_t>(begin->asInt());
        span.endUs = static_cast<std::uint64_t>(end->asInt());
        span.tid = static_cast<std::uint32_t>(tid->asInt());
        if (const auto *trace = entry.find("trace");
            trace != nullptr &&
            trace->type() == report::Json::Type::String)
            if (!traceIdFromHex(trace->asString(), span.traceHi,
                                span.traceLo))
                return false;
        if (const auto *id = entry.find("span");
            id != nullptr && id->type() == report::Json::Type::Int)
            span.spanId = static_cast<std::uint64_t>(id->asInt());
        if (const auto *parent = entry.find("parent");
            parent != nullptr &&
            parent->type() == report::Json::Type::Int)
            span.parentId =
                static_cast<std::uint64_t>(parent->asInt());
        parsed.spans.push_back(std::move(span));
    }
    out = std::move(parsed);
    return true;
}

namespace
{

/** The "args" payload carried by traced chrome events. */
report::Json
spanArgs(const SpanEvent &span)
{
    auto args = report::Json::object();
    args.set("trace", traceIdToHex(span.traceHi, span.traceLo));
    if (span.spanId != 0)
        args.set("span", span.spanId);
    if (span.parentId != 0)
        args.set("parent", span.parentId);
    return args;
}

} // namespace

report::Json
chromeTraceJson()
{
    auto root = report::Json::object();
    root.set("displayTimeUnit", "ms");
    auto events = report::Json::array();
    for (const auto &span : traceSnapshot()) {
        auto event = report::Json::object();
        event.set("name", span.name);
        event.set("ph", "X");
        event.set("ts", static_cast<double>(span.beginUs));
        event.set("dur",
                  static_cast<double>(span.endUs - span.beginUs));
        event.set("pid", 1);
        event.set("tid", span.tid);
        if (span.traceHi != 0 || span.traceLo != 0)
            event.set("args", spanArgs(span));
        events.push(std::move(event));
    }
    root.set("traceEvents", std::move(events));
    auto other = report::Json::object();
    other.set("recorded", traceRecorded());
    other.set("dropped", traceDropped());
    other.set("ring_capacity",
              static_cast<std::uint64_t>(kTraceRingCapacity));
    root.set("otherData", std::move(other));
    return root;
}

report::Json
chromeTraceJson(const std::vector<NodeTrace> &nodes)
{
    // One absolute axis: the earliest node epoch becomes ts == 0, and
    // every other node's events shift by its epoch delta. Nodes that
    // report no epoch (obs compiled out) sit at offset 0.
    std::uint64_t min_epoch = 0;
    bool any_epoch = false;
    for (const auto &node : nodes)
        if (node.epochUnixUs != 0) {
            min_epoch = any_epoch
                            ? std::min(min_epoch, node.epochUnixUs)
                            : node.epochUnixUs;
            any_epoch = true;
        }

    auto root = report::Json::object();
    root.set("displayTimeUnit", "ms");
    auto events = report::Json::array();
    std::uint64_t recorded = 0, dropped = 0;
    for (std::size_t n = 0; n < nodes.size(); ++n) {
        const NodeTrace &node = nodes[n];
        const auto pid = static_cast<std::int64_t>(n + 1);
        const std::uint64_t offset =
            node.epochUnixUs > min_epoch ? node.epochUnixUs - min_epoch
                                         : 0;
        auto meta = report::Json::object();
        meta.set("name", "process_name");
        meta.set("ph", "M");
        meta.set("pid", pid);
        auto meta_args = report::Json::object();
        meta_args.set("name", node.node);
        meta.set("args", std::move(meta_args));
        events.push(std::move(meta));
        for (const auto &span : node.spans) {
            auto event = report::Json::object();
            event.set("name", span.name);
            event.set("ph", "X");
            event.set("ts",
                      static_cast<double>(offset + span.beginUs));
            event.set("dur",
                      static_cast<double>(span.endUs - span.beginUs));
            event.set("pid", pid);
            event.set("tid", span.tid);
            if (span.traceHi != 0 || span.traceLo != 0)
                event.set("args", spanArgs(span));
            events.push(std::move(event));
        }
        recorded += node.recorded;
        dropped += node.dropped;
    }
    root.set("traceEvents", std::move(events));
    auto other = report::Json::object();
    other.set("nodes", static_cast<std::uint64_t>(nodes.size()));
    other.set("recorded", recorded);
    other.set("dropped", dropped);
    other.set("ring_capacity",
              static_cast<std::uint64_t>(kTraceRingCapacity));
    root.set("otherData", std::move(other));
    return root;
}

void
writeChromeTrace(const std::string &path)
{
    report::JsonWriter().writeFile(path, chromeTraceJson());
}

void
writeChromeTrace(const std::string &path,
                 const std::vector<NodeTrace> &nodes)
{
    report::JsonWriter().writeFile(path, chromeTraceJson(nodes));
}

} // namespace rhs::obs

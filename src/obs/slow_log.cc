#include "obs/slow_log.hh"

#include <chrono>

namespace rhs::obs
{

std::uint64_t
paramsDigest(const std::string &body)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (const char c : body) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ull;
    }
    return hash;
}

SlowLog::SlowLog(std::size_t capacity_in)
    : capacity(capacity_in > 0 ? capacity_in : 1)
{
}

void
SlowLog::setThresholdMs(double ms)
{
    std::lock_guard lock(mutex);
    thresholdMs_ = ms > 0 ? ms : 0.0;
}

double
SlowLog::thresholdMs() const
{
    std::lock_guard lock(mutex);
    return thresholdMs_;
}

bool
SlowLog::qualifies(double total_ms) const
{
    std::lock_guard lock(mutex);
    return thresholdMs_ > 0 && total_ms > thresholdMs_;
}

void
SlowLog::record(Entry entry)
{
    if (entry.unixUs == 0)
        entry.unixUs = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::system_clock::now().time_since_epoch())
                .count());
    std::lock_guard lock(mutex);
    entries.push_back(std::move(entry));
    if (entries.size() > capacity)
        entries.pop_front();
    ++recorded;
}

std::uint64_t
SlowLog::recordedTotal() const
{
    std::lock_guard lock(mutex);
    return recorded;
}

report::Json
SlowLog::toJson() const
{
    std::lock_guard lock(mutex);
    auto json = report::Json::object();
    json.set("threshold_ms", thresholdMs_);
    json.set("capacity", static_cast<std::uint64_t>(capacity));
    json.set("recorded", recorded);
    auto list = report::Json::array();
    for (const Entry &entry : entries) {
        auto item = report::Json::object();
        item.set("unix_us", entry.unixUs);
        item.set("op", entry.op);
        item.set("params_digest", entry.digest);
        item.set("total_ms", entry.totalMs);
        if (!entry.traceId.empty())
            item.set("trace", entry.traceId);
        auto hops = report::Json::object();
        for (const auto &[name, ms] : entry.hops)
            hops.set(name, ms);
        item.set("hops", std::move(hops));
        list.push(std::move(item));
    }
    json.set("entries", std::move(list));
    return json;
}

} // namespace rhs::obs

/**
 * @file
 * Export of obs:: state into report::Json documents.
 *
 * Split from metrics/trace so the recording core (rhs_obs_core) stays
 * dependency-free — rhs_util links it to instrument the thread pool,
 * while this TU (rhs_obs) may link rhs_report without a cycle.
 *
 * Two exports:
 *  - metricsJson: a MetricsSnapshot folded into a stable JSON object
 *    (names sorted, histogram buckets with `le` upper edges plus
 *    p50/p99 convenience quantiles) — the payload behind the serve
 *    `stats` op's `metrics` member;
 *  - chromeTraceJson / writeChromeTrace: the retained spans as a
 *    Chrome trace-event document (load it at chrome://tracing or
 *    https://ui.perfetto.dev) — the payload behind `--trace-out`.
 */

#ifndef RHS_OBS_EXPORT_HH
#define RHS_OBS_EXPORT_HH

#include <string>

#include "obs/metrics.hh"
#include "report/json.hh"

namespace rhs::obs
{

/** Fold one metrics snapshot into a stable JSON object. */
report::Json metricsJson(const MetricsSnapshot &snapshot);

/** Shorthand: snapshot a registry and fold it. */
report::Json registryJson(const Registry &registry);

/**
 * The retained spans as a Chrome trace-event document: one complete
 * ("ph": "X") event per span with ts/dur in microseconds, plus the
 * recorded/dropped totals under "otherData".
 */
report::Json chromeTraceJson();

/** Write chromeTraceJson() to a file (creates parent directories). */
void writeChromeTrace(const std::string &path);

} // namespace rhs::obs

#endif // RHS_OBS_EXPORT_HH

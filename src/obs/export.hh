/**
 * @file
 * Export of obs:: state into report::Json documents.
 *
 * Split from metrics/trace so the recording core (rhs_obs_core) stays
 * dependency-free — rhs_util links it to instrument the thread pool,
 * while this TU (rhs_obs) may link rhs_report without a cycle.
 *
 * Three export families:
 *  - metricsJson: a MetricsSnapshot folded into a stable JSON object
 *    (names sorted, histogram buckets with `le` upper edges plus
 *    p50/p99 convenience quantiles) — the payload behind the serve
 *    `stats` op's `metrics` member;
 *  - chromeTraceJson / writeChromeTrace: the retained spans as a
 *    Chrome trace-event document (load it at chrome://tracing or
 *    https://ui.perfetto.dev) — the payload behind `--trace-out`. The
 *    multi-node overloads stitch several processes' spans (pulled via
 *    the rhs-rpc/1 `trace_pull` op) into one document: pid = node
 *    index with a process_name metadata record, timestamps aligned on
 *    each node's traceEpochUnixUs();
 *  - the fleet merge helpers (histogramFromJson, mergeHistograms,
 *    mergeRegistryJson) behind the router's `fleet_stats` op: counters
 *    sum across replicas, gauges and infos stay per-replica (a queue
 *    depth has no meaningful fleet sum), histograms merge bucket-wise
 *    so fleet p50/p99 come from real merged buckets, never from
 *    averaging per-shard quantiles.
 */

#ifndef RHS_OBS_EXPORT_HH
#define RHS_OBS_EXPORT_HH

#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "report/json.hh"

namespace rhs::obs
{

/** One histogram's folded state as a stable JSON object
 *  (count/sum/min/max/mean/p50/p99 + buckets with `le` edges). */
report::Json histogramJson(const HistogramData &data);

/** Inverse of histogramJson; false when `json` is not a histogram
 *  object (the fleet merge skips what it cannot parse). */
bool histogramFromJson(const report::Json &json, HistogramData &out);

/**
 * Merge folded histograms bucket-wise. The bucket layout is taken
 * from the first input that has one; inputs with a different layout
 * (mismatched bucket count or edges — a version-skewed shard)
 * contribute their count/sum/min/max but not their buckets, so the
 * merged quantiles stay exact over the matching inputs instead of
 * guessing. Empty input list yields an empty histogram.
 */
HistogramData mergeHistograms(const std::vector<HistogramData> &parts);

/** Fold one metrics snapshot into a stable JSON object. */
report::Json metricsJson(const MetricsSnapshot &snapshot);

/** Shorthand: snapshot a registry and fold it. */
report::Json registryJson(const Registry &registry);

/**
 * Merge per-replica metricsJson documents (label -> document, label
 * is the replica identity like "s0r1") into one fleet document:
 * counters summed, gauges and infos per-replica under their label,
 * histograms merged via mergeHistograms. The `replicas` member lists
 * the labels folded in.
 */
report::Json mergeRegistryJson(
    const std::vector<std::pair<std::string, report::Json>> &parts);

/** One node's drained spans, as pulled by the `trace_pull` op. */
struct NodeTrace
{
    std::string node;              //!< Identity, e.g. "serve:7001".
    std::uint64_t epochUnixUs = 0; //!< The node's traceEpochUnixUs().
    std::uint64_t recorded = 0;
    std::uint64_t dropped = 0;
    bool truncated = false; //!< Span list capped by max_spans.
    std::vector<SpanEvent> spans;
};

/**
 * Spans as a JSON array (the `trace_pull` payload). At most
 * `max_spans` entries are emitted (newest kept — the tail is the
 * interesting end of a flight recorder); `truncated` reports whether
 * the cap bit.
 */
report::Json spansJson(const std::vector<SpanEvent> &spans,
                       std::size_t max_spans, bool &truncated);

/** Parse one `trace_pull` result object back into a NodeTrace; false
 *  when the document does not look like one. */
bool nodeTraceFromJson(const report::Json &json, NodeTrace &out);

/**
 * The retained spans of *this process* as a Chrome trace-event
 * document: one complete ("ph": "X") event per span with ts/dur in
 * microseconds, plus the recorded/dropped totals under "otherData".
 * Spans carrying a distributed trace context get their trace/span ids
 * in "args".
 */
report::Json chromeTraceJson();

/**
 * A stitched multi-node Chrome trace: every node's spans under its
 * own pid (1-based node index, named by a process_name metadata
 * event), timestamps shifted onto one absolute axis via the nodes'
 * epochUnixUs, so one routed request renders as a single tree across
 * router and shard processes.
 */
report::Json chromeTraceJson(const std::vector<NodeTrace> &nodes);

/** Write chromeTraceJson() to a file (creates parent directories). */
void writeChromeTrace(const std::string &path);

/** Write a stitched multi-node trace to a file. */
void writeChromeTrace(const std::string &path,
                      const std::vector<NodeTrace> &nodes);

} // namespace rhs::obs

#endif // RHS_OBS_EXPORT_HH

#include "fuzz/search.hh"

#include <algorithm>
#include <numeric>

#include "obs/metrics.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace rhs::fuzz
{

namespace
{

/** fuzz.* metrics (global registry; see docs on the obs contract). */
struct FuzzMetrics
{
    obs::Counter &searches;
    obs::Counter &candidates;
    obs::Counter &generations;
    obs::Counter &cacheHits;
    obs::Counter &cacheMisses;
    obs::Histogram &generationBest;

    static FuzzMetrics &
    get()
    {
        static FuzzMetrics metrics{
            obs::Registry::global().counter("fuzz.searches"),
            obs::Registry::global().counter("fuzz.candidates"),
            obs::Registry::global().counter("fuzz.generations"),
            obs::Registry::global().counter("fuzz.roweval.hits"),
            obs::Registry::global().counter("fuzz.roweval.misses"),
            obs::Registry::global().histogram(
                "fuzz.generation_best_activations",
                obs::exponentialBounds(1e3, 2.0, 16)),
        };
        return metrics;
    }
};

/** Table 1 pattern ids, indexable for mutation draws. */
rhmodel::PatternId
patternAt(unsigned index)
{
    return rhmodel::allPatterns[index % rhmodel::allPatterns.size()];
}

unsigned
patternIndexOf(rhmodel::PatternId id)
{
    for (unsigned i = 0; i < rhmodel::allPatterns.size(); ++i)
        if (rhmodel::allPatterns[i] == id)
            return i;
    return 0;
}

/** A power-of-two period in [1, slots]. */
unsigned
randomPeriod(Rng &rng, unsigned slots)
{
    unsigned max_shift = 0;
    while ((2u << max_shift) <= slots)
        ++max_shift;
    return 1u << rng.pick(0, max_shift);
}

} // namespace

unsigned
Mutator::clampRow(long row) const
{
    // Aggressors keep one row of slack to the victim-row bounds so
    // every aggressor's neighbours are themselves legal victims.
    const long lo = 2;
    const long hi = static_cast<long>(config.maxVictimRow) - 1;
    return static_cast<unsigned>(std::clamp(row, lo, std::max(lo, hi)));
}

AggressorGene
Mutator::randomAggressor(Rng &rng, unsigned anchor) const
{
    AggressorGene gene;
    // Rows cluster around the anchor at stride-2-ish offsets, the
    // geometry family TRRespass/Blacksmith patterns live in.
    const long offset =
        static_cast<long>(rng.pick(0, 8)) - 4; // [-4, 4]
    gene.row = clampRow(static_cast<long>(anchor) + offset);
    gene.period = randomPeriod(rng, config.slots);
    gene.phase = rng.pick(0, gene.period - 1);
    gene.amplitude = rng.pick(1, std::max(1u, config.maxAmplitude));
    return gene;
}

PatternGene
Mutator::randomGene(Rng &rng) const
{
    RHS_ASSERT(!config.candidateRows.empty(),
               "fuzz search needs at least one candidate victim row");
    const unsigned anchor = config.candidateRows[rng.pick(
        0, static_cast<unsigned>(config.candidateRows.size()) - 1)];

    PatternGene gene;
    gene.bank = config.bank;
    gene.slots = config.slots;
    gene.patternCenter = anchor;
    // Start from the data pattern the uniform baseline uses and let
    // mutation explore; a fraction of fresh genes jump straight to a
    // random Table 1 pattern.
    gene.patternId = config.seedPatternId;
    gene.patternSeed = config.seedPatternSeed;
    if (rng.chance(0.25)) {
        gene.patternId = patternAt(rng.pick(0, 6));
        // >> 1 keeps random seeds within the JSON-representable
        // non-negative int64 range of the rpc pattern_seed param.
        if (gene.patternId == rhmodel::PatternId::Random)
            gene.patternSeed = rng.next() >> 1;
    }

    // Double-sided core around the anchor, then optional extra
    // aggressors (many-sided / asymmetric geometries).
    gene.aggressors.push_back(
        {clampRow(static_cast<long>(anchor) - 1),
         randomPeriod(rng, config.slots), 0,
         rng.pick(1, std::max(1u, config.maxAmplitude))});
    gene.aggressors.push_back(
        {clampRow(static_cast<long>(anchor) + 1),
         randomPeriod(rng, config.slots), 0,
         rng.pick(1, std::max(1u, config.maxAmplitude))});
    for (auto &aggressor : gene.aggressors)
        aggressor.phase = rng.pick(0, aggressor.period - 1);
    const unsigned extras =
        rng.pick(0, std::max(2u, config.maxAggressors) - 2);
    for (unsigned i = 0; i < extras; ++i)
        gene.aggressors.push_back(randomAggressor(rng, anchor));
    return gene;
}

PatternGene
Mutator::mutate(const PatternGene &parent, Rng &rng) const
{
    PatternGene child = parent;
    const unsigned edits = rng.pick(1, 3);
    for (unsigned e = 0; e < edits; ++e) {
        switch (rng.pick(0, 5)) {
          case 0: // Re-tune one aggressor's slot-grid placement.
            if (!child.aggressors.empty()) {
                auto &a = child.aggressors[rng.pick(
                    0,
                    static_cast<unsigned>(child.aggressors.size()) -
                        1)];
                a.period = randomPeriod(rng, child.slots);
                a.phase = rng.pick(0, a.period - 1);
            }
            break;
          case 1: // Re-tune one aggressor's amplitude.
            if (!child.aggressors.empty()) {
                auto &a = child.aggressors[rng.pick(
                    0,
                    static_cast<unsigned>(child.aggressors.size()) -
                        1)];
                a.amplitude =
                    rng.pick(1, std::max(1u, config.maxAmplitude));
            }
            break;
          case 2: // Nudge one aggressor's row.
            if (!child.aggressors.empty()) {
                auto &a = child.aggressors[rng.pick(
                    0,
                    static_cast<unsigned>(child.aggressors.size()) -
                        1)];
                const long delta =
                    static_cast<long>(rng.pick(0, 4)) - 2;
                a.row = clampRow(static_cast<long>(a.row) + delta);
            }
            break;
          case 3: // Grow the aggressor set.
            if (child.aggressors.size() <
                std::max(2u, config.maxAggressors))
                child.aggressors.push_back(
                    randomAggressor(rng, child.patternCenter));
            break;
          case 4: // Shrink the aggressor set (keep a pair).
            if (child.aggressors.size() > 2)
                child.aggressors.erase(
                    child.aggressors.begin() +
                    rng.pick(0,
                             static_cast<unsigned>(
                                 child.aggressors.size()) -
                                 1));
            break;
          default: // Flip the data pattern.
            child.patternId = patternAt(
                patternIndexOf(child.patternId) + rng.pick(1, 6));
            child.patternSeed =
                child.patternId == rhmodel::PatternId::Random
                    ? rng.next() >> 1
                    : config.seedPatternSeed;
            break;
        }
    }
    return child;
}

Search::Search(const SearchConfig &config) : config(config)
{
    RHS_ASSERT(this->config.population >= 1, "empty fuzz population");
    this->config.elites = std::clamp(this->config.elites, 1u,
                                     this->config.population);
    RHS_ASSERT(this->config.slots >= 1, "slot grid must be non-empty");
    RHS_ASSERT(this->config.maxVictimRow >= 3,
               "bank too small for double-sided fuzzing");
}

SearchResult
Search::run(const rhmodel::AnalyticEngine &engine) const
{
    using Clock = std::chrono::steady_clock;
    const auto start = Clock::now();
    auto &metrics = FuzzMetrics::get();
    auto &registry = obs::Registry::global();
    const auto hits0 = registry.counter("roweval.cache.hits").value();
    const auto misses0 =
        registry.counter("roweval.cache.misses").value();
    metrics.searches.add(1);

    const Mutator mutator(config);

    // Generation 0: one uniform double-sided gene per candidate row
    // (the paper's baseline patterns), random genes for the rest.
    std::vector<PatternGene> population(config.population);
    const auto seeded = std::min<std::size_t>(
        config.candidateRows.size(), config.population);
    for (std::size_t i = 0; i < config.population; ++i) {
        if (i < seeded) {
            population[i] = PatternGene::uniformDoubleSided(
                config.bank, config.candidateRows[i], config.slots,
                config.seedPatternId, config.seedPatternSeed);
        } else {
            Rng rng(config.seed, 0, i);
            population[i] = mutator.randomGene(rng);
        }
    }

    SearchResult result;
    auto &pool = util::ThreadPool::instance();
    for (unsigned generation = 0;; ++generation) {
        // Score the population in parallel; pre-sized per-index slots
        // keep the result independent of the thread count.
        const auto scored = pool.parallelMap(
            config.population, [&](std::size_t i) {
                ScoredGene entry;
                entry.gene = population[i];
                entry.activations = activationsToFirstFlip(
                    engine, population[i], config.conditions,
                    config.trial, config.maxVictimRow, &entry.victim);
                return entry;
            });
        result.candidatesEvaluated += config.population;
        metrics.candidates.add(config.population);
        metrics.generations.add(1);

        // Deterministic selection: stable sort on fitness, population
        // index breaking ties.
        std::vector<std::size_t> order(config.population);
        std::iota(order.begin(), order.end(), 0);
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                             return scored[a].activations <
                                    scored[b].activations;
                         });

        const auto &generation_best = scored[order.front()];
        if (generation_best.activations < result.best.activations ||
            result.generationsCompleted == 0)
            result.best = generation_best;
        result.generationBest.push_back(result.best.activations);
        if (result.best.activations != rhmodel::kNeverFlips)
            metrics.generationBest.observe(result.best.activations);
        ++result.generationsCompleted;

        if (generation == 0) {
            for (std::size_t i = 0; i < seeded; ++i)
                result.uniformActivations = std::min(
                    result.uniformActivations, scored[i].activations);
        }

        if (generation + 1 >= config.generations)
            break;
        if (config.deadlineMs >= 0.0) {
            const std::chrono::duration<double, std::milli> spent =
                Clock::now() - start;
            if (spent.count() >= config.deadlineMs) {
                result.budgetExhausted = true;
                break;
            }
        }

        // Next generation: elites survive verbatim, the rest are
        // mutants of round-robin elite parents.
        std::vector<PatternGene> next(config.population);
        for (unsigned e = 0; e < config.elites; ++e)
            next[e] = scored[order[e]].gene;
        for (std::size_t i = config.elites; i < config.population;
             ++i) {
            const auto &parent =
                scored[order[(i - config.elites) % config.elites]]
                    .gene;
            Rng rng(config.seed, generation + 1, i);
            next[i] = mutator.mutate(parent, rng);
        }
        population = std::move(next);
    }

    metrics.cacheHits.add(
        registry.counter("roweval.cache.hits").value() - hits0);
    metrics.cacheMisses.add(
        registry.counter("roweval.cache.misses").value() - misses0);
    return result;
}

} // namespace rhs::fuzz

/**
 * @file
 * The fuzzer's pattern genome: a compact encoding of non-uniform
 * RowHammer access patterns (Blacksmith/ZenHammer direction).
 *
 * The paper characterizes *uniform* patterns — every aggressor
 * activated once per hammer round. The modern attack frontier
 * (TRRespass, Blacksmith) is non-uniform: aggressors are placed on a
 * tREFI-aligned slot grid and differ in frequency (how many grid slots
 * they occupy), phase (which slots), and amplitude (consecutive
 * activations per occupied slot). Such patterns defeat sampling TRR
 * trackers that uniform patterns cannot.
 *
 * A PatternGene encodes one such pattern. It *lowers* into the
 * existing rhmodel::HammerAttack representation — the slot-ordered
 * activation sequence of one grid period — so that both evaluation
 * paths understand it unchanged:
 *
 *  - the closed-form RowEval kernel sums per-activation damage over
 *    the aggressor list (duplicates are additive), so one "hammer" of
 *    the lowered attack is one full grid period;
 *  - the cycle-level defense harness (defense::evaluateDefense)
 *    iterates the list *in order* per round, so frequency/phase
 *    structure is visible to TRR samplers exactly as the real access
 *    stream would be.
 *
 * Fitness comparisons across genes with different schedule lengths are
 * normalized to *activations*: activationsToFirstFlip() multiplies the
 * kernel's per-period HCfirst by the schedule length, so a gene cannot
 * look stronger merely by packing more activations into one period.
 */

#ifndef RHS_FUZZ_GENE_HH
#define RHS_FUZZ_GENE_HH

#include <cstdint>
#include <vector>

#include "report/json.hh"
#include "rhmodel/analytic.hh"
#include "rhmodel/pattern.hh"

namespace rhs::fuzz
{

/** One aggressor row's place in the slot grid. */
struct AggressorGene
{
    unsigned row = 0;       //!< Physical aggressor row.
    unsigned period = 1;    //!< Active every `period` slots (1 = every
                            //!< slot; the inverse of Blacksmith's
                            //!< frequency).
    unsigned phase = 0;     //!< First active slot, in [0, period).
    unsigned amplitude = 1; //!< Consecutive ACTs per active slot.

    bool operator==(const AggressorGene &) const = default;
};

/** A complete non-uniform pattern: aggressor set + data pattern. */
struct PatternGene
{
    unsigned bank = 0;
    unsigned slots = 8; //!< Slot-grid length (one tREFI period).
    std::vector<AggressorGene> aggressors;
    //! Data pattern written around the victims (part of the genome:
    //! the fuzzer searches data patterns too).
    rhmodel::PatternId patternId = rhmodel::PatternId::Checkered;
    std::uint64_t patternSeed = 0;
    //! Row the data pattern is centered on (HammerAttack::patternCenter).
    unsigned patternCenter = 0;

    bool operator==(const PatternGene &) const = default;

    /**
     * The uniform double-sided gene on `victim_row`: aggressors
     * victim±1, each active in slot 0 only, amplitude 1. Lowers to
     * exactly HammerAttack::doubleSided(bank, victim_row), so its
     * fitness is byte-identical to the paper's uniform baseline — the
     * search seeds its initial population with these genes, which is
     * what guarantees "best fuzzed <= best uniform".
     */
    static PatternGene uniformDoubleSided(unsigned bank,
                                          unsigned victim_row,
                                          unsigned slots,
                                          rhmodel::PatternId pattern_id,
                                          std::uint64_t pattern_seed);

    /**
     * Lower to the analytic/cycle representation: the slot-ordered
     * activation sequence of one grid period. Slot s emits, for each
     * aggressor in genome order with s % period == phase % period,
     * `amplitude` consecutive activations of its row.
     */
    rhmodel::HammerAttack lower() const;

    /** Activations one grid period issues (= lower().aggressorRows.size()). */
    std::uint64_t activationsPerPeriod() const;

    /**
     * Victim candidates: rows adjacent to any aggressor that are not
     * themselves aggressors, restricted to [1, max_victim_row] (both
     * physical neighbours must exist). Sorted, unique.
     */
    std::vector<unsigned> victims(unsigned max_victim_row) const;

    /** The concrete data pattern instance this genome encodes. */
    rhmodel::DataPattern
    dataPattern() const
    {
        return rhmodel::DataPattern(patternId, patternSeed);
    }

    /**
     * Order-sensitive 64-bit digest of every genome field. Two genes
     * digest equal iff they are field-for-field identical; the
     * determinism tests compare search winners through this.
     */
    std::uint64_t digest() const;

    /** JSON form for fuzz_best replies and BENCH_fuzz.json. */
    report::Json toJson() const;
};

/**
 * Activations until the first bit flip this gene achieves on any of
 * its victims, under the analytic model: min over victims of
 * rowEval(victim).minHcFirst (in grid periods) * activationsPerPeriod.
 * Lower is a stronger attack. Returns rhmodel::kNeverFlips when no
 * victim ever flips (or the gene has no victims).
 *
 * @param flipped_victim When non-null and a flip exists, receives the
 *        victim row achieving the minimum.
 *
 * Thread-safe: only touches the engine's const, internally-locked
 * evaluation paths — candidate populations score in parallel.
 */
double activationsToFirstFlip(const rhmodel::AnalyticEngine &engine,
                              const PatternGene &gene,
                              const rhmodel::Conditions &conditions,
                              unsigned trial, unsigned max_victim_row,
                              unsigned *flipped_victim = nullptr);

} // namespace rhs::fuzz

#endif // RHS_FUZZ_GENE_HH

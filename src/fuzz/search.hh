/**
 * @file
 * Seeded, deterministic, parallel search over the pattern-gene space.
 *
 * The search is a small elitist genetic loop: a population of
 * PatternGenes is scored (in parallel) by predicted
 * activations-to-first-flip, the best `elites` survive each
 * generation, and the rest of the next population are mutants of the
 * survivors.
 *
 * Determinism contract (tested in tests/fuzz_engine_test.cc):
 *
 *  - Every random draw is counter-based: a pure function of
 *    (seed, generation, candidate index, draw counter) through
 *    util::hashTuple — there is no shared RNG state, so candidate i of
 *    generation g is the same gene no matter how many threads score
 *    the population or in what order.
 *  - Scoring writes into pre-sized per-index slots via
 *    util::ThreadPool::parallelMap, so results are byte-identical at
 *    any --jobs.
 *  - Selection ties break on population index (stable sort), never on
 *    address or timing.
 *  - All scoring flows through AnalyticEngine::rowEval, so repeated
 *    (victim, attack, conditions) keys — elites re-scored every
 *    generation, siblings sharing a victim — are memoized by the
 *    sharded RowEval LRU and any attached snapshot/spill store, which
 *    by contract can change cost but never values.
 *
 * The only nondeterministic input is the optional deadline: it decides
 * how many *whole generations* complete (best-so-far early return with
 * budgetExhausted set), never the content of a completed generation.
 * Callers that need bit-reproducible output (BENCH_fuzz.json, the
 * loadgen byte-identity mixes) simply run without a deadline.
 */

#ifndef RHS_FUZZ_SEARCH_HH
#define RHS_FUZZ_SEARCH_HH

#include <chrono>
#include <cstdint>
#include <vector>

#include "fuzz/gene.hh"
#include "rhmodel/analytic.hh"
#include "rhmodel/cell_model.hh"
#include "util/hash.hh"

namespace rhs::fuzz
{

/**
 * Deterministic counter-based random stream for one (seed, generation,
 * candidate) triple. Each draw is a pure function of the triple and
 * the draw index; copying the object replays the stream.
 */
class Rng
{
  public:
    Rng(std::uint64_t seed, std::uint64_t generation,
        std::uint64_t candidate)
        : state(util::hashTuple(seed, generation, candidate))
    {
    }

    /** Next 64-bit word of the stream. */
    std::uint64_t
    next()
    {
        return util::hashCombine(state, ++counter);
    }

    /** Uniform draw in [lo, hi] (inclusive); lo when the range is empty. */
    unsigned
    pick(unsigned lo, unsigned hi)
    {
        if (hi <= lo)
            return lo;
        return lo + static_cast<unsigned>(next() % (hi - lo + 1));
    }

    /** Bernoulli draw. */
    bool
    chance(double p)
    {
        return util::toUnitDouble(next()) < p;
    }

  private:
    std::uint64_t state;
    std::uint64_t counter = 0;
};

/** Everything one search run needs. */
struct SearchConfig
{
    std::uint64_t seed = 0;
    unsigned population = 24;
    unsigned generations = 6;
    unsigned elites = 6;

    unsigned slots = 8;         //!< Slot-grid length of every gene.
    unsigned maxAggressors = 6; //!< Aggressor-set size cap.
    unsigned maxAmplitude = 3;  //!< Per-slot activation burst cap.

    unsigned bank = 0;
    //! Victim anchors: generation 0 contains one uniform double-sided
    //! gene per entry (the paper's baseline attack), so the winner can
    //! never be weaker than the best uniform pattern over these rows.
    std::vector<unsigned> candidateRows;
    //! Largest legal victim row (rowsPerBank() - 2: a victim needs
    //! both physical neighbours). Aggressors stay within it too.
    unsigned maxVictimRow = 0;

    rhmodel::Conditions conditions{};
    //! Data pattern of the seeded uniform genes (the module's WCDP);
    //! mutation explores the other Table 1 patterns from there.
    rhmodel::PatternId seedPatternId = rhmodel::PatternId::Checkered;
    std::uint64_t seedPatternSeed = 0;
    unsigned trial = 0;

    //! Wall-clock budget in milliseconds (< 0 = unlimited). Checked
    //! between generations: on expiry the search returns best-so-far
    //! with budgetExhausted set instead of blowing the deadline.
    double deadlineMs = -1.0;
};

/** One scored candidate. */
struct ScoredGene
{
    PatternGene gene;
    //! Predicted activations to first flip (rhmodel::kNeverFlips when
    //! the gene never flips anything).
    double activations = rhmodel::kNeverFlips;
    unsigned victim = 0; //!< Victim row achieving it.
};

/** Outcome of one search run. */
struct SearchResult
{
    ScoredGene best;
    //! Best fitness after each completed generation (the fitness
    //! trace; monotonically non-increasing).
    std::vector<double> generationBest;
    //! Fitness of the best seeded uniform double-sided gene — the
    //! paper's baseline, measured through the same evaluator.
    double uniformActivations = rhmodel::kNeverFlips;
    std::uint64_t candidatesEvaluated = 0;
    unsigned generationsCompleted = 0;
    bool budgetExhausted = false;
};

/** Deterministic gene construction and mutation. */
class Mutator
{
  public:
    explicit Mutator(const SearchConfig &config) : config(config) {}

    /** A fresh random gene (generation-0 filler). */
    PatternGene randomGene(Rng &rng) const;

    /** A mutated copy of `parent` (1-3 random edits). */
    PatternGene mutate(const PatternGene &parent, Rng &rng) const;

  private:
    unsigned clampRow(long row) const;
    AggressorGene randomAggressor(Rng &rng, unsigned anchor) const;

    const SearchConfig &config;
};

/** The population/elite-retention search loop. */
class Search
{
  public:
    explicit Search(const SearchConfig &config);

    /**
     * Run the search against `engine`. Thread-safe with respect to the
     * engine (scoring only uses its const evaluation paths); uses the
     * global util::ThreadPool for population scoring.
     */
    SearchResult run(const rhmodel::AnalyticEngine &engine) const;

  private:
    SearchConfig config;
};

} // namespace rhs::fuzz

#endif // RHS_FUZZ_SEARCH_HH

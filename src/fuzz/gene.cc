#include "fuzz/gene.hh"

#include <algorithm>

#include "util/hash.hh"
#include "util/logging.hh"

namespace rhs::fuzz
{

PatternGene
PatternGene::uniformDoubleSided(unsigned bank, unsigned victim_row,
                                unsigned slots,
                                rhmodel::PatternId pattern_id,
                                std::uint64_t pattern_seed)
{
    RHS_ASSERT(victim_row >= 1,
               "double-sided victim needs both neighbours: row ",
               victim_row);
    PatternGene gene;
    gene.bank = bank;
    gene.slots = slots;
    gene.patternId = pattern_id;
    gene.patternSeed = pattern_seed;
    gene.patternCenter = victim_row;
    // period == slots with phase 0 puts each aggressor in slot 0 only,
    // so one period lowers to exactly [victim-1, victim+1] — the same
    // list HammerAttack::doubleSided builds, in the same order.
    gene.aggressors.push_back({victim_row - 1, slots, 0, 1});
    gene.aggressors.push_back({victim_row + 1, slots, 0, 1});
    return gene;
}

rhmodel::HammerAttack
PatternGene::lower() const
{
    rhmodel::HammerAttack attack;
    attack.bank = bank;
    attack.patternCenter = patternCenter;
    for (unsigned s = 0; s < slots; ++s) {
        for (const auto &aggressor : aggressors) {
            const unsigned period = std::max(1u, aggressor.period);
            if (s % period != aggressor.phase % period)
                continue;
            for (unsigned k = 0; k < std::max(1u, aggressor.amplitude);
                 ++k)
                attack.aggressorRows.push_back(aggressor.row);
        }
    }
    return attack;
}

std::uint64_t
PatternGene::activationsPerPeriod() const
{
    std::uint64_t activations = 0;
    for (const auto &aggressor : aggressors) {
        const unsigned period = std::max(1u, aggressor.period);
        // Active slots of this aggressor within the grid: one every
        // `period` slots starting at phase % period.
        const unsigned first = aggressor.phase % period;
        if (first < slots)
            activations += (1 + (slots - 1 - first) / period) *
                           static_cast<std::uint64_t>(
                               std::max(1u, aggressor.amplitude));
    }
    return activations;
}

std::vector<unsigned>
PatternGene::victims(unsigned max_victim_row) const
{
    std::vector<unsigned> candidates;
    auto is_aggressor = [&](unsigned row) {
        for (const auto &aggressor : aggressors)
            if (aggressor.row == row)
                return true;
        return false;
    };
    for (const auto &aggressor : aggressors) {
        for (int offset : {-1, 1}) {
            const long candidate =
                static_cast<long>(aggressor.row) + offset;
            if (candidate < 1 ||
                candidate > static_cast<long>(max_victim_row))
                continue;
            const auto row = static_cast<unsigned>(candidate);
            if (!is_aggressor(row))
                candidates.push_back(row);
        }
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(
        std::unique(candidates.begin(), candidates.end()),
        candidates.end());
    return candidates;
}

std::uint64_t
PatternGene::digest() const
{
    std::uint64_t digest = util::hashTuple(
        bank, slots, static_cast<std::uint64_t>(patternId), patternSeed,
        patternCenter, aggressors.size());
    for (const auto &aggressor : aggressors)
        digest = util::hashCombine(
            digest, util::hashTuple(aggressor.row, aggressor.period,
                                    aggressor.phase,
                                    aggressor.amplitude));
    return digest;
}

report::Json
PatternGene::toJson() const
{
    auto value = report::Json::object();
    value.set("bank", bank);
    value.set("slots", slots);
    value.set("pattern", rhmodel::to_string(patternId));
    value.set("pattern_seed", patternSeed);
    value.set("pattern_center", patternCenter);
    auto list = report::Json::array();
    for (const auto &aggressor : aggressors) {
        auto entry = report::Json::object();
        entry.set("row", aggressor.row);
        entry.set("period", aggressor.period);
        entry.set("phase", aggressor.phase);
        entry.set("amplitude", aggressor.amplitude);
        list.push(std::move(entry));
    }
    value.set("aggressors", std::move(list));
    return value;
}

double
activationsToFirstFlip(const rhmodel::AnalyticEngine &engine,
                       const PatternGene &gene,
                       const rhmodel::Conditions &conditions,
                       unsigned trial, unsigned max_victim_row,
                       unsigned *flipped_victim)
{
    const auto attack = gene.lower();
    if (attack.aggressorRows.empty())
        return rhmodel::kNeverFlips;
    const auto per_period =
        static_cast<double>(attack.aggressorRows.size());
    const auto pattern = gene.dataPattern();

    double best_periods = rhmodel::kNeverFlips;
    unsigned best_victim = 0;
    for (unsigned victim : gene.victims(max_victim_row)) {
        const auto eval =
            engine.rowEval(victim, attack, conditions, pattern, trial);
        if (eval->minHcFirst < best_periods) {
            best_periods = eval->minHcFirst;
            best_victim = victim;
        }
    }
    if (best_periods == rhmodel::kNeverFlips)
        return rhmodel::kNeverFlips;
    if (flipped_victim != nullptr)
        *flipped_victim = best_victim;
    return best_periods * per_period;
}

} // namespace rhs::fuzz

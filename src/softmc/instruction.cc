#include "softmc/instruction.hh"

#include "util/logging.hh"

namespace rhs::softmc
{

std::uint64_t
encode(const Instruction &instruction)
{
    RHS_ASSERT(instruction.bank < (1u << 8), "bank field overflow");
    RHS_ASSERT(instruction.row < (1u << 24), "row field overflow");
    RHS_ASSERT(instruction.column < (1u << 12), "column field overflow");
    RHS_ASSERT(instruction.idle < (1u << 16), "idle field overflow");
    return (static_cast<std::uint64_t>(instruction.op) << 60) |
           (static_cast<std::uint64_t>(instruction.bank) << 52) |
           (static_cast<std::uint64_t>(instruction.row) << 28) |
           (static_cast<std::uint64_t>(instruction.column) << 16) |
           static_cast<std::uint64_t>(instruction.idle);
}

Instruction
decode(std::uint64_t word)
{
    Instruction instruction;
    instruction.op = static_cast<dram::CommandType>((word >> 60) & 0xf);
    instruction.bank = static_cast<unsigned>((word >> 52) & 0xff);
    instruction.row = static_cast<unsigned>((word >> 28) & 0xffffff);
    instruction.column = static_cast<unsigned>((word >> 16) & 0xfff);
    instruction.idle = static_cast<unsigned>(word & 0xffff);
    return instruction;
}

dram::Cycles
Program::durationCycles() const
{
    dram::Cycles total = 0;
    for (const auto &instruction : instructions)
        total += 1 + instruction.idle;
    return total;
}

} // namespace rhs::softmc

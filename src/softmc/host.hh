/**
 * @file
 * The SoftMC host: executes programs against a DRAM module.
 *
 * Replaces the FPGA + PCIe path of the paper's infrastructure (Fig. 2b/c)
 * with a cycle-counting software executor. The host never issues
 * refresh, matching the paper's methodology of disabling all DRAM
 * self-regulation events during tests (§4.2).
 */

#ifndef RHS_SOFTMC_HOST_HH
#define RHS_SOFTMC_HOST_HH

#include <cstdint>
#include <vector>

#include "dram/module.hh"
#include "softmc/instruction.hh"

namespace rhs::softmc
{

/** Result of executing one program. */
struct RunResult
{
    //! Data returned by each RD, in program order (one byte per chip).
    std::vector<std::vector<std::uint8_t>> readData;
    dram::Cycles endCycle = 0; //!< Host cycle after the last slot.
    dram::Ns elapsedNs = 0.0;  //!< Wall-clock the program occupied.
};

/** Executes SoftMC programs on a module with cycle bookkeeping. */
class Host
{
  public:
    /** @param module Module under test (not owned). */
    explicit Host(dram::Module &module) : module(module) {}

    /**
     * Execute a program starting at the current host cycle.
     *
     * @throws dram::TimingError if the program violates DRAM timing.
     */
    RunResult run(const Program &program);

    /** Advance the host clock without issuing commands. */
    void idle(dram::Cycles cycles) { currentCycle += cycles; }

    /** Current host cycle. */
    dram::Cycles cycle() const { return currentCycle; }

    /**
     * Convenience: install a full row image (all chips) using the
     * host's bulk-write path (models SoftMC's buffered row writes).
     */
    void writeRowImage(unsigned bank, unsigned logical_row,
                       const std::vector<std::vector<std::uint8_t>> &data);

    /** Convenience: read back a full row image through the bulk path. */
    std::vector<std::vector<std::uint8_t>>
    readRowImage(unsigned bank, unsigned logical_row);

  private:
    dram::Module &module;
    dram::Cycles currentCycle = 0;
};

} // namespace rhs::softmc

#endif // RHS_SOFTMC_HOST_HH

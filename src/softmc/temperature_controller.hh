/**
 * @file
 * Simulated temperature controller (Maxwell FT200 analogue, §4.1).
 *
 * The paper clamps silicone rubber heaters to both sides of the module
 * and regulates chip temperature with a closed-loop PID controller to
 * within ±0.1 degC. This model couples a discrete PID loop to a
 * first-order thermal plant:
 *
 *   dT/dt = (ambient - T) / tau + gain * power,  power in [0, 1]
 */

#ifndef RHS_SOFTMC_TEMPERATURE_CONTROLLER_HH
#define RHS_SOFTMC_TEMPERATURE_CONTROLLER_HH

namespace rhs::softmc
{

/** PID gains and plant constants. */
struct ThermalConfig
{
    double ambient = 25.0;   //!< Room temperature (degC).
    double tau = 60.0;       //!< Plant time constant (s).
    double heaterGain = 2.5; //!< degC/s at full heater power.
    double kp = 0.8;         //!< Proportional gain.
    double ki = 0.08;        //!< Integral gain.
    double kd = 0.5;         //!< Derivative gain.
    double dt = 0.1;         //!< Control period (s).
    double sensorNoise = 0.02; //!< Thermocouple noise std-dev (degC).
};

/** Closed-loop heater controller with a thermocouple readout. */
class TemperatureController
{
  public:
    explicit TemperatureController(const ThermalConfig &config = {},
                                   unsigned seed = 1);

    /** Set the reference temperature (degC). */
    void setTarget(double celsius);

    /** Advance the loop by one control period. */
    void step();

    /**
     * Run the loop until the measurement stays within tolerance of the
     * target for hold_seconds, or give up after timeout_seconds.
     *
     * @return True when the plant settled.
     */
    bool settle(double tolerance = 0.1, double hold_seconds = 5.0,
                double timeout_seconds = 3600.0);

    /** Thermocouple reading (plant temperature + sensor noise). */
    double measure();

    /** True plant temperature (for tests). */
    double plantTemperature() const { return temperature; }

    double target() const { return setpoint; }

    /** Heater duty cycle of the last step, in [0, 1]. */
    double heaterPower() const { return power; }

  private:
    ThermalConfig config;
    double setpoint;
    double temperature;
    double integral = 0.0;
    double lastError = 0.0;
    double power = 0.0;
    unsigned long long noiseState;
};

} // namespace rhs::softmc

#endif // RHS_SOFTMC_TEMPERATURE_CONTROLLER_HH

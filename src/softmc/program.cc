#include "softmc/program.hh"

#include <algorithm>

#include "util/logging.hh"

namespace rhs::softmc
{

ProgramBuilder &
ProgramBuilder::push(Instruction instruction)
{
    program.instructions.push_back(instruction);
    return *this;
}

ProgramBuilder &
ProgramBuilder::act(unsigned bank, unsigned logical_row)
{
    return push({dram::CommandType::Act, bank, logical_row, 0, 0});
}

ProgramBuilder &
ProgramBuilder::pre(unsigned bank)
{
    return push({dram::CommandType::Pre, bank, 0, 0, 0});
}

ProgramBuilder &
ProgramBuilder::preAll()
{
    return push({dram::CommandType::PreA, 0, 0, 0, 0});
}

ProgramBuilder &
ProgramBuilder::rd(unsigned bank, unsigned column)
{
    return push({dram::CommandType::Rd, bank, 0, column, 0});
}

ProgramBuilder &
ProgramBuilder::wr(unsigned bank, unsigned column)
{
    return push({dram::CommandType::Wr, bank, 0, column, 0});
}

ProgramBuilder &
ProgramBuilder::waitFromLast(dram::Ns total_ns)
{
    RHS_ASSERT(!program.instructions.empty(),
               "waitFromLast with no prior command");
    auto &last = program.instructions.back();
    const auto cycles = timing.toCycles(total_ns);
    // The command itself occupies one cycle.
    const unsigned required = cycles > 0 ? static_cast<unsigned>(cycles) - 1
                                         : 0;
    last.idle = std::max(last.idle, required);
    return *this;
}

ProgramBuilder &
ProgramBuilder::idle(unsigned cycles)
{
    if (cycles == 0)
        return *this;
    return push({dram::CommandType::Nop, 0, 0, 0, cycles - 1});
}

Program
makeHammerProgram(const dram::TimingParams &timing,
                  const HammerProgramSpec &spec)
{
    const dram::Ns t_on = spec.tAggOn > 0.0 ? spec.tAggOn : timing.tRAS;
    const dram::Ns t_off = spec.tAggOff > 0.0 ? spec.tAggOff : timing.tRP;
    RHS_ASSERT(t_on + 1e-9 >= timing.tRAS, "tAggOn below tRAS");
    RHS_ASSERT(t_off + 1e-9 >= timing.tRP, "tAggOff below tRP");

    const auto on_cycles = timing.toCycles(t_on);
    const auto off_cycles = timing.toCycles(t_off);
    const auto rcd_cycles = timing.toCycles(timing.tRCD);
    const auto ccd_cycles = timing.toCycles(timing.tCCD);
    const auto rtp_cycles = timing.toCycles(timing.tRTP);

    const bool double_sided = spec.aggressorB != spec.aggressorA;
    std::vector<unsigned> rows{spec.aggressorA};
    if (double_sided)
        rows.push_back(spec.aggressorB);

    Program program;
    program.instructions.reserve(
        spec.hammers * rows.size() * (2 + spec.readsPerActivation));

    for (std::uint64_t h = 0; h < spec.hammers; ++h) {
        for (unsigned row : rows) {
            Instruction act{dram::CommandType::Act, spec.bank, row, 0, 0};
            if (spec.readsPerActivation == 0) {
                act.idle = static_cast<unsigned>(on_cycles - 1);
                program.instructions.push_back(act);
            } else {
                // ACT .. tRCD .. RD xN (tCCD apart) .. PRE; the
                // precharge honours both the requested on-time and the
                // read burst's tRTP requirement, whichever is later.
                act.idle = static_cast<unsigned>(rcd_cycles - 1);
                program.instructions.push_back(act);
                const dram::Cycles last_rd_offset =
                    rcd_cycles +
                    (spec.readsPerActivation - 1) * ccd_cycles;
                const dram::Cycles pre_offset = std::max(
                    on_cycles, last_rd_offset + rtp_cycles);
                for (unsigned r = 0; r < spec.readsPerActivation; ++r) {
                    Instruction rd{dram::CommandType::Rd, spec.bank, 0,
                                   0, 0};
                    const bool last = r + 1 == spec.readsPerActivation;
                    const dram::Cycles here = rcd_cycles + r * ccd_cycles;
                    rd.idle = static_cast<unsigned>(
                        (last ? pre_offset - here : ccd_cycles) - 1);
                    program.instructions.push_back(rd);
                }
            }
            Instruction pre{dram::CommandType::Pre, spec.bank, 0, 0, 0};
            pre.idle = static_cast<unsigned>(off_cycles - 1);
            program.instructions.push_back(pre);
        }
    }
    return program;
}

} // namespace rhs::softmc

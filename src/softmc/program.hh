/**
 * @file
 * Builders for the SoftMC test programs used by the characterization.
 *
 * The central pattern is the paper's double-sided hammer loop (Fig. 6):
 *
 *   ACT(RowA) .. tAggOn .. PRE .. tAggOff .. ACT(RowB) .. tAggOn .. PRE
 *
 * Baseline tests use tAggOn = tRAS and tAggOff = tRP; the Aggressor On
 * (Off) tests stretch tAggOn (tAggOff) with idle cycles. The on-time
 * can also be stretched implicitly by issuing READ bursts to the open
 * aggressor row (attack improvement 3, §8.1).
 */

#ifndef RHS_SOFTMC_PROGRAM_HH
#define RHS_SOFTMC_PROGRAM_HH

#include "dram/timing.hh"
#include "softmc/instruction.hh"

namespace rhs::softmc
{

/** Fluent builder for SoftMC programs with nanosecond waits. */
class ProgramBuilder
{
  public:
    /** @param timing Timing set; converts nanoseconds to host cycles. */
    explicit ProgramBuilder(const dram::TimingParams &timing)
        : timing(timing)
    {
    }

    ProgramBuilder &act(unsigned bank, unsigned logical_row);
    ProgramBuilder &pre(unsigned bank);
    ProgramBuilder &preAll();
    ProgramBuilder &rd(unsigned bank, unsigned column);
    ProgramBuilder &wr(unsigned bank, unsigned column);

    /**
     * Pad so the *next* command issues at least total_ns after the
     * previous command's issue cycle (one cycle is consumed by the
     * previous command itself).
     */
    ProgramBuilder &waitFromLast(dram::Ns total_ns);

    /** Append raw idle cycles. */
    ProgramBuilder &idle(unsigned cycles);

    Program build() { return std::move(program); }

  private:
    ProgramBuilder &push(Instruction instruction);

    const dram::TimingParams &timing;
    Program program;
};

/** Parameters of a hammer loop program. */
struct HammerProgramSpec
{
    unsigned bank = 0;
    unsigned aggressorA = 0; //!< Logical row address.
    unsigned aggressorB = 0; //!< Logical row; == aggressorA: single-sided.
    std::uint64_t hammers = 1;
    dram::Ns tAggOn = 0.0;  //!< 0 = baseline tRAS.
    dram::Ns tAggOff = 0.0; //!< 0 = baseline tRP.
    //! READ commands issued per activation; each read extends the
    //! actual on-time when the requested tAggOn cannot contain them.
    unsigned readsPerActivation = 0;
};

/**
 * Build the paper's (double-sided) hammer loop. One hammer is one
 * activation of each aggressor (§4.2).
 */
Program makeHammerProgram(const dram::TimingParams &timing,
                          const HammerProgramSpec &spec);

} // namespace rhs::softmc

#endif // RHS_SOFTMC_PROGRAM_HH

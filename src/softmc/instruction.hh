/**
 * @file
 * SoftMC-style instruction encoding and programs.
 *
 * Mirrors the programming model of the SoftMC host library (Hassan et
 * al., HPCA 2017) the paper's infrastructure is built on: a test is a
 * flat sequence of DDR commands with explicit idle cycles, giving the
 * host precise control of command timing at the FPGA clock granularity
 * (1.25 ns for DDR4, 2.5 ns for DDR3; §4.1).
 */

#ifndef RHS_SOFTMC_INSTRUCTION_HH
#define RHS_SOFTMC_INSTRUCTION_HH

#include <cstdint>
#include <vector>

#include "dram/command.hh"

namespace rhs::softmc
{

/** One SoftMC instruction: a DDR command or an idle block. */
struct Instruction
{
    dram::CommandType op = dram::CommandType::Nop;
    unsigned bank = 0;
    unsigned row = 0;     //!< Logical row (ACT).
    unsigned column = 0;  //!< Column (RD/WR).
    unsigned idle = 0;    //!< Extra idle cycles after issue (NOP count).

    bool operator==(const Instruction &other) const = default;
};

/**
 * Pack an instruction into the 64-bit on-the-wire form:
 * [63:60] opcode, [59:52] bank, [51:28] row, [27:16] column,
 * [15:0] idle count.
 */
std::uint64_t encode(const Instruction &instruction);

/** Unpack an encoded instruction. */
Instruction decode(std::uint64_t word);

/** A complete SoftMC test program. */
struct Program
{
    std::vector<Instruction> instructions;

    /** Total host cycles the program occupies (1 per instr + idles). */
    dram::Cycles durationCycles() const;
};

} // namespace rhs::softmc

#endif // RHS_SOFTMC_INSTRUCTION_HH

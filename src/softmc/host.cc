#include "softmc/host.hh"

#include "util/logging.hh"

namespace rhs::softmc
{

RunResult
Host::run(const Program &program)
{
    RunResult result;
    for (const auto &instruction : program.instructions) {
        dram::Command command;
        command.type = instruction.op;
        command.bank = instruction.bank;
        command.row = instruction.row;
        command.column = instruction.column;
        command.cycle = currentCycle;

        if (instruction.op == dram::CommandType::Rd) {
            result.readData.push_back(module.readColumn(
                instruction.bank, instruction.column, currentCycle));
        } else if (instruction.op != dram::CommandType::Nop) {
            module.issue(command);
        }
        currentCycle += 1 + instruction.idle;
    }
    result.endCycle = currentCycle;
    result.elapsedNs = module.timing().toNs(program.durationCycles());
    return result;
}

void
Host::writeRowImage(unsigned bank, unsigned logical_row,
                    const std::vector<std::vector<std::uint8_t>> &data)
{
    module.storeRowDirect(bank, logical_row, data);
}

std::vector<std::vector<std::uint8_t>>
Host::readRowImage(unsigned bank, unsigned logical_row)
{
    return module.loadRowDirect(bank, logical_row);
}

} // namespace rhs::softmc

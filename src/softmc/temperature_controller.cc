#include "softmc/temperature_controller.hh"

#include <algorithm>
#include <cmath>

#include "util/rng.hh"

namespace rhs::softmc
{

TemperatureController::TemperatureController(const ThermalConfig &config,
                                             unsigned seed)
    : config(config), setpoint(config.ambient),
      temperature(config.ambient), noiseState(seed)
{
}

void
TemperatureController::setTarget(double celsius)
{
    setpoint = celsius;
    integral = 0.0;
    lastError = setpoint - temperature;
}

void
TemperatureController::step()
{
    const double error = setpoint - temperature;
    integral += error * config.dt;
    // Anti-windup: bound the integral term's contribution.
    integral = std::clamp(integral, -10.0 / config.ki, 10.0 / config.ki);
    const double derivative = (error - lastError) / config.dt;
    lastError = error;

    power = config.kp * error + config.ki * integral +
            config.kd * derivative;
    power = std::clamp(power, 0.0, 1.0);

    // First-order plant update.
    const double flow = (config.ambient - temperature) / config.tau +
                        config.heaterGain * power;
    temperature += flow * config.dt;
}

bool
TemperatureController::settle(double tolerance, double hold_seconds,
                              double timeout_seconds)
{
    double held = 0.0;
    for (double elapsed = 0.0; elapsed < timeout_seconds;
         elapsed += config.dt) {
        step();
        if (std::abs(temperature - setpoint) <= tolerance) {
            held += config.dt;
            if (held >= hold_seconds)
                return true;
        } else {
            held = 0.0;
        }
    }
    return false;
}

double
TemperatureController::measure()
{
    util::Rng rng(noiseState++);
    return temperature + rng.gaussian(0.0, config.sensorNoise);
}

} // namespace rhs::softmc

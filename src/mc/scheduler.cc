#include "mc/scheduler.hh"

#include <algorithm>

#include "stats/descriptive.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace rhs::mc
{

std::string
to_string(RowPolicy policy)
{
    switch (policy) {
      case RowPolicy::OpenPage: return "open-page";
      case RowPolicy::ClosedPage: return "closed-page";
      case RowPolicy::TimeoutPage: return "timeout-page";
    }
    return "?";
}

double
ScheduleStats::hitRate() const
{
    return requests == 0 ? 0.0
                         : static_cast<double>(rowHits) /
                               static_cast<double>(requests);
}

double
ScheduleStats::meanOnTime() const
{
    return onTimes.empty() ? 0.0 : stats::mean(onTimes);
}

namespace
{

/** Collects the on-time of every closed activation window. */
struct OnTimeListener : dram::ActivationListener
{
    std::vector<double> onTimes;

    void
    onActivation(const dram::ActivationRecord &record) override
    {
        onTimes.push_back(record.onTime);
    }
};

/** Per-bank timing bookkeeping mirroring the FSM constraints. */
struct BankState
{
    bool open = false;
    unsigned row = 0;
    dram::Cycles nextAct = 0;
    dram::Cycles nextColumn = 0;
    dram::Cycles earliestPre = 0;
    dram::Cycles lastAccess = 0;
};

} // namespace

Scheduler::Scheduler(dram::Module &module, RowPolicy policy,
                     dram::Ns timeout_ns)
    : module(module), policy(policy), timeoutNs(timeout_ns)
{
    RHS_ASSERT(timeout_ns > 0.0);
}

ScheduleStats
Scheduler::run(const std::vector<MemRequest> &requests)
{
    const auto &timing = module.timing();
    module.resetTiming();

    OnTimeListener listener;
    module.addListener(&listener);

    std::vector<BankState> banks(module.geometry().banks);
    ScheduleStats result;

    const auto rcd = timing.toCycles(timing.tRCD);
    const auto rp = timing.toCycles(timing.tRP);
    const auto ras = timing.toCycles(timing.tRAS);
    const auto ccd = timing.toCycles(timing.tCCD);
    const auto rtp = timing.toCycles(timing.tRTP);
    const auto wr = timing.toCycles(timing.tWR);
    const auto timeout = timing.toCycles(timeoutNs);

    auto precharge = [&](unsigned bank_id, dram::Cycles at) {
        auto &bank = banks[bank_id];
        const auto when = std::max(at, bank.earliestPre);
        module.issue({dram::CommandType::Pre, bank_id, 0, 0, when});
        bank.open = false;
        bank.nextAct = when + rp;
    };

    auto activate = [&](unsigned bank_id, unsigned row,
                        dram::Cycles at) {
        auto &bank = banks[bank_id];
        const auto when =
            module.earliestRankAct(std::max(at, bank.nextAct));
        module.issue({dram::CommandType::Act, bank_id, row, 0, when});
        bank.open = true;
        bank.row = row;
        bank.nextColumn = when + rcd;
        bank.earliestPre = when + ras;
        ++result.activations;
        return when;
    };

    for (const auto &request : requests) {
        RHS_ASSERT(request.bank < banks.size());
        auto &bank = banks[request.bank];
        dram::Cycles now = request.arrival;

        // Timeout policy: close a row that sat idle too long (the
        // precharge logically happened at idle-timeout expiry).
        if (policy == RowPolicy::TimeoutPage && bank.open &&
            now > bank.lastAccess + timeout) {
            precharge(request.bank,
                      std::max(bank.lastAccess + timeout,
                               bank.earliestPre));
        }

        if (bank.open && bank.row == request.row) {
            ++result.rowHits;
        } else if (bank.open) {
            precharge(request.bank, now);
            activate(request.bank, request.row,
                     banks[request.bank].nextAct);
        } else {
            activate(request.bank, request.row, now);
        }

        const auto col_at = std::max(now, bank.nextColumn);
        if (request.isWrite) {
            module.writeColumn(
                request.bank, request.column,
                std::vector<std::uint8_t>(module.chipCount(), 0xAA),
                col_at);
            bank.earliestPre = std::max(bank.earliestPre, col_at + wr);
        } else {
            module.readColumn(request.bank, request.column, col_at);
            bank.earliestPre = std::max(bank.earliestPre, col_at + rtp);
        }
        bank.nextColumn = col_at + ccd;
        bank.lastAccess = col_at;
        result.endCycle = std::max(result.endCycle, col_at);
        ++result.requests;

        if (policy == RowPolicy::ClosedPage)
            precharge(request.bank, bank.earliestPre);
    }

    // Drain: close every open bank so its window is recorded.
    for (unsigned b = 0; b < banks.size(); ++b) {
        if (banks[b].open)
            precharge(b, banks[b].earliestPre);
    }

    result.onTimes = std::move(listener.onTimes);
    return result;
}

std::vector<MemRequest>
makeTrace(const TraceConfig &config)
{
    RHS_ASSERT(config.rowLocality >= 0.0 && config.rowLocality <= 1.0);
    util::Rng rng(config.seed);
    std::vector<MemRequest> trace;
    trace.reserve(config.requests);

    std::vector<unsigned> last_row(config.banks, 0);
    dram::Cycles now = 0;
    for (std::uint64_t i = 0; i < config.requests; ++i) {
        MemRequest request;
        request.bank =
            static_cast<unsigned>(rng.uniformInt(config.banks));
        if (rng.uniform() < config.rowLocality) {
            request.row = last_row[request.bank];
        } else {
            request.row =
                static_cast<unsigned>(rng.uniformInt(config.rows));
            last_row[request.bank] = request.row;
        }
        request.column = static_cast<unsigned>(rng.uniformInt(64));
        request.isWrite = rng.bernoulli(0.3);
        now += 1 + rng.poisson(config.meanInterarrival);
        request.arrival = now;
        trace.push_back(request);
    }
    return trace;
}

} // namespace rhs::mc

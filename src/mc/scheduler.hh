/**
 * @file
 * A simple DRAM memory-controller scheduler with configurable
 * row-buffer policies.
 *
 * Defense Improvement 5 (§8.2): monitoring every row's active time in
 * DRAM is infeasible, but "the memory controller can be modified to
 * limit or reduce the active times of all rows by changes to memory
 * request scheduling algorithms and/or row buffer policies". This
 * scheduler makes that concrete: it services a request stream against
 * the device model under open-page, closed-page, or timeout-page
 * policies and reports the resulting aggressor-row active times — the
 * quantity §6 shows controls RowHammer vulnerability.
 */

#ifndef RHS_MC_SCHEDULER_HH
#define RHS_MC_SCHEDULER_HH

#include <cstdint>
#include <vector>

#include "dram/module.hh"

namespace rhs::mc
{

/** One memory request at the controller. */
struct MemRequest
{
    unsigned bank = 0;
    unsigned row = 0;    //!< Logical row address.
    unsigned column = 0;
    bool isWrite = false;
    dram::Cycles arrival = 0; //!< Earliest issue time.
};

/** Row-buffer management policy. */
enum class RowPolicy
{
    OpenPage,   //!< Keep the row open until a conflicting access.
    ClosedPage, //!< Precharge immediately after every column access.
    TimeoutPage, //!< Precharge after a bounded idle time.
};

/** Name of a policy for reports. */
std::string to_string(RowPolicy policy);

/** Statistics of one scheduling run. */
struct ScheduleStats
{
    std::uint64_t requests = 0;
    std::uint64_t activations = 0;
    std::uint64_t rowHits = 0; //!< Column accesses without a new ACT.
    dram::Cycles endCycle = 0;

    //! Measured on-time (ns) of every activation window.
    std::vector<double> onTimes;

    /** Row-buffer hit rate. */
    double hitRate() const;

    /** Mean aggressor-row active time (ns). */
    double meanOnTime() const;
};

/** In-order per-bank scheduler over a dram::Module. */
class Scheduler
{
  public:
    /**
     * @param module Device under the controller (not owned).
     * @param policy Row-buffer policy.
     * @param timeout_ns Idle time before TimeoutPage precharges.
     */
    Scheduler(dram::Module &module, RowPolicy policy,
              dram::Ns timeout_ns = 100.0);

    /**
     * Service a request stream in arrival order.
     *
     * @return Aggregate statistics including measured on-times.
     */
    ScheduleStats run(const std::vector<MemRequest> &requests);

  private:
    dram::Module &module;
    RowPolicy policy;
    dram::Ns timeoutNs;
};

/** Parameters of the synthetic request-stream generator. */
struct TraceConfig
{
    std::uint64_t requests = 10'000;
    unsigned banks = 4;
    unsigned rows = 4'096;
    //! Probability the next request hits the previously used row of
    //! the bank (row-buffer locality an attacker can also induce).
    double rowLocality = 0.6;
    //! Mean gap between arrivals, in controller cycles.
    double meanInterarrival = 12.0;
    std::uint64_t seed = 1;
};

/** Generate a synthetic request stream. */
std::vector<MemRequest> makeTrace(const TraceConfig &config);

} // namespace rhs::mc

#endif // RHS_MC_SCHEDULER_HH

#include "attack/temperature_aware.hh"

#include "stats/descriptive.hh"
#include "util/logging.hh"

namespace rhs::attack
{

double
TargetedRowChoice::reduction() const
{
    if (medianHcFirst == 0)
        return 0.0;
    return 1.0 - static_cast<double>(bestHcFirst) /
                     static_cast<double>(medianHcFirst);
}

TargetedRowChoice
pickRowForTemperature(const core::Tester &tester, unsigned bank,
                      const std::vector<unsigned> &candidate_rows,
                      double temperature,
                      const rhmodel::DataPattern &pattern)
{
    RHS_ASSERT(!candidate_rows.empty(), "need candidate rows");

    rhmodel::Conditions conditions;
    conditions.temperature = temperature;

    TargetedRowChoice choice;
    std::vector<double> all;
    bool first = true;
    for (unsigned row : candidate_rows) {
        const auto hc = tester.hcFirstMin(bank, row, conditions, pattern);
        if (hc == core::kNotVulnerable)
            continue;
        all.push_back(static_cast<double>(hc));
        if (first || hc < choice.bestHcFirst) {
            choice.bestRow = row;
            choice.bestHcFirst = hc;
            first = false;
        }
    }
    if (!all.empty())
        choice.medianHcFirst =
            static_cast<std::uint64_t>(stats::median(all));
    return choice;
}

} // namespace rhs::attack

/**
 * @file
 * Attack Improvement 2 (§8.1): temperature-triggered attacks.
 *
 * Obsv. 3: some cells flip only within a very narrow temperature
 * range. Placing victim data on such a cell turns a RowHammer bit flip
 * into a thermometer: the flip fires exactly when the chip reaches the
 * cell's range, triggering the main attack at a chosen temperature
 * (e.g. peak-hours detection, or a heated IoT device in the field).
 */

#ifndef RHS_ATTACK_TRIGGER_CELL_HH
#define RHS_ATTACK_TRIGGER_CELL_HH

#include <vector>

#include "core/tester.hh"

namespace rhs::attack
{

/** A cell usable as a temperature trigger. */
struct TriggerCell
{
    dram::CellLocation location;
    double rangeLow = 0.0;  //!< Lowest tested temp where it flips.
    double rangeHigh = 0.0; //!< Highest tested temp where it flips.
};

/**
 * Find cells that flip at the target temperature but not outside a
 * narrow band around it.
 *
 * @param tester Module tester.
 * @param bank Bank to search.
 * @param rows Rows to search.
 * @param pattern Data pattern of the trigger hammering.
 * @param target_temp Temperature the trigger should detect.
 * @param band_degC Maximum allowed half-width of the cell's vulnerable
 *        range around the target (default: one 5 degC test step).
 */
std::vector<TriggerCell>
findTriggerCells(const core::Tester &tester, unsigned bank,
                 const std::vector<unsigned> &rows,
                 const rhmodel::DataPattern &pattern, double target_temp,
                 double band_degC = 5.0);

/**
 * Check whether a trigger fires at an actual temperature: run the
 * hammer test and look for the trigger cell among the flips.
 */
bool triggerFires(const core::Tester &tester, const TriggerCell &trigger,
                  unsigned bank, const rhmodel::DataPattern &pattern,
                  double actual_temp);

} // namespace rhs::attack

#endif // RHS_ATTACK_TRIGGER_CELL_HH

/**
 * @file
 * Attack Improvement 1 (§8.1): temperature-aware aggressor selection.
 *
 * An attacker who can monitor or control DRAM temperature picks victim
 * rows that are most vulnerable at the operating temperature, reducing
 * the hammer count (and attack time / detection probability) compared
 * with an uninformed choice.
 */

#ifndef RHS_ATTACK_TEMPERATURE_AWARE_HH
#define RHS_ATTACK_TEMPERATURE_AWARE_HH

#include <cstdint>
#include <vector>

#include "core/tester.hh"

namespace rhs::attack
{

/** Outcome of temperature-aware target selection. */
struct TargetedRowChoice
{
    unsigned bestRow = 0;          //!< Most vulnerable row at target T.
    std::uint64_t bestHcFirst = 0; //!< Its HCfirst at target T.
    //! HCfirst an uninformed attacker gets in expectation (median row).
    std::uint64_t medianHcFirst = 0;

    /** Hammer-count reduction vs the uninformed choice (0.5 = 50%). */
    double reduction() const;
};

/**
 * Scan candidate rows at the attack temperature and select the best.
 *
 * @param tester Module tester.
 * @param bank Bank under attack.
 * @param candidate_rows Rows the attacker can place victim data in.
 * @param temperature Operating temperature the attack targets.
 * @param pattern Data pattern of the attack.
 */
TargetedRowChoice
pickRowForTemperature(const core::Tester &tester, unsigned bank,
                      const std::vector<unsigned> &candidate_rows,
                      double temperature,
                      const rhmodel::DataPattern &pattern);

} // namespace rhs::attack

#endif // RHS_ATTACK_TEMPERATURE_AWARE_HH

#include "attack/trigger_cell.hh"

#include <map>
#include <set>

#include "core/temp_analysis.hh"
#include "util/logging.hh"

namespace rhs::attack
{

std::vector<TriggerCell>
findTriggerCells(const core::Tester &tester, unsigned bank,
                 const std::vector<unsigned> &rows,
                 const rhmodel::DataPattern &pattern, double target_temp,
                 double band_degC)
{
    const auto temps = core::standardTemperatures();
    std::vector<TriggerCell> triggers;

    for (unsigned row : rows) {
        // Observed flip temperatures per cell of this row.
        std::map<std::uint64_t, std::set<double>> flips_at;
        std::map<std::uint64_t, dram::CellLocation> locations;
        for (double temp : temps) {
            rhmodel::Conditions conditions;
            conditions.temperature = temp;
            const auto detail =
                tester.berDetail(bank, row, conditions, pattern);
            for (const auto &loc : detail.flips) {
                const std::uint64_t key =
                    (static_cast<std::uint64_t>(loc.chip) << 32) |
                    (loc.column << 8) | loc.bit;
                flips_at[key].insert(temp);
                locations.emplace(key, loc);
            }
        }

        for (const auto &[key, temps_hit] : flips_at) {
            const double lo = *temps_hit.begin();
            const double hi = *temps_hit.rbegin();
            // The trigger must actually fire at the target temperature
            // (not merely span it -- a cell can have a gap there) and
            // stay silent outside the allowed band.
            if (temps_hit.count(target_temp) == 0)
                continue;
            if (target_temp - lo > band_degC ||
                hi - target_temp > band_degC) {
                continue;
            }
            TriggerCell trigger;
            trigger.location = locations.at(key);
            trigger.rangeLow = lo;
            trigger.rangeHigh = hi;
            triggers.push_back(trigger);
        }
    }
    return triggers;
}

bool
triggerFires(const core::Tester &tester, const TriggerCell &trigger,
             unsigned bank, const rhmodel::DataPattern &pattern,
             double actual_temp)
{
    rhmodel::Conditions conditions;
    conditions.temperature = actual_temp;
    const auto detail = tester.berDetail(bank, trigger.location.row,
                                         conditions, pattern);
    for (const auto &loc : detail.flips) {
        if (loc == trigger.location)
            return true;
    }
    return false;
}

} // namespace rhs::attack

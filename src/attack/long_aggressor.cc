#include "attack/long_aggressor.hh"

#include <algorithm>

#include "stats/descriptive.hh"
#include "util/logging.hh"

namespace rhs::attack
{

double
LongAggressorReport::berGain() const
{
    return berBaseline > 0.0 ? berExtended / berBaseline : 0.0;
}

double
LongAggressorReport::hcFirstReduction() const
{
    if (hcFirstBaseline == 0)
        return 0.0;
    return 1.0 - static_cast<double>(hcFirstExtended) /
                     static_cast<double>(hcFirstBaseline);
}

bool
LongAggressorReport::defeatsBaselineThreshold() const
{
    return hcFirstExtended != 0 && hcFirstBaseline != 0 &&
           hcFirstExtended < hcFirstBaseline;
}

double
effectiveOnTime(const dram::TimingParams &timing,
                unsigned reads_per_activation)
{
    if (reads_per_activation == 0)
        return timing.tRAS;
    const double burst = timing.tRCD +
                         (reads_per_activation - 1) * timing.tCCD +
                         timing.tRTP;
    return std::max(timing.tRAS, burst);
}

LongAggressorReport
analyzeLongAggressor(const core::Tester &tester, unsigned bank,
                     const std::vector<unsigned> &rows,
                     const rhmodel::DataPattern &pattern,
                     unsigned reads_per_activation)
{
    RHS_ASSERT(!rows.empty());
    const auto &timing = tester.module().module().timing();

    LongAggressorReport report;
    report.readsPerActivation = reads_per_activation;
    report.effectiveOnTimeNs =
        effectiveOnTime(timing, reads_per_activation);

    rhmodel::Conditions baseline;
    rhmodel::Conditions extended;
    extended.tAggOn = report.effectiveOnTimeNs;

    std::vector<double> ber_base, ber_ext;
    std::uint64_t hc_base = 0, hc_ext = 0;
    for (unsigned row : rows) {
        ber_base.push_back(static_cast<double>(
            tester.berOfRow(bank, row, baseline, pattern)));
        ber_ext.push_back(static_cast<double>(
            tester.berOfRow(bank, row, extended, pattern)));

        const auto base_hc =
            tester.hcFirstMin(bank, row, baseline, pattern);
        const auto ext_hc =
            tester.hcFirstMin(bank, row, extended, pattern);
        if (base_hc != core::kNotVulnerable &&
            (hc_base == 0 || base_hc < hc_base)) {
            hc_base = base_hc;
        }
        if (ext_hc != core::kNotVulnerable &&
            (hc_ext == 0 || ext_hc < hc_ext)) {
            hc_ext = ext_hc;
        }
    }

    report.berBaseline = stats::mean(ber_base);
    report.berExtended = stats::mean(ber_ext);
    report.hcFirstBaseline = hc_base;
    report.hcFirstExtended = hc_ext;
    return report;
}

} // namespace rhs::attack

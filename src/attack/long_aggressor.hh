/**
 * @file
 * Attack Improvement 3 (§8.1): extended aggressor-row active time.
 *
 * Issuing 10-15 READ commands per aggressor activation keeps the row
 * open ~5x longer, which (Obsv. 8) increases BER by 3.2-10.2x and
 * lowers the effective HCfirst by ~36% — enough to defeat defenses
 * configured with a baseline-measured HCfirst.
 */

#ifndef RHS_ATTACK_LONG_AGGRESSOR_HH
#define RHS_ATTACK_LONG_AGGRESSOR_HH

#include <cstdint>

#include "core/tester.hh"

namespace rhs::attack
{

/** Comparison of the baseline and extended-on-time attacks. */
struct LongAggressorReport
{
    unsigned readsPerActivation = 0;
    double effectiveOnTimeNs = 0.0; //!< On-time the READ burst forces.

    double berBaseline = 0.0; //!< Mean flips/row, baseline on-time.
    double berExtended = 0.0; //!< Mean flips/row, extended on-time.

    std::uint64_t hcFirstBaseline = 0;
    std::uint64_t hcFirstExtended = 0;

    /** BER amplification factor. */
    double berGain() const;

    /** HCfirst reduction (0.36 = 36% lower than baseline). */
    double hcFirstReduction() const;

    /**
     * Whether the attack flips bits below a defense threshold set to
     * the baseline HCfirst (i.e. the defense is defeated).
     */
    bool defeatsBaselineThreshold() const;
};

/**
 * The aggressor on-time a READ burst forces: tRCD + (n-1) tCCD + tRTP,
 * never below tRAS.
 */
double effectiveOnTime(const dram::TimingParams &timing,
                       unsigned reads_per_activation);

/**
 * Measure the improvement over a set of victim rows.
 *
 * @param tester Module tester.
 * @param bank Bank under attack.
 * @param rows Victim physical rows.
 * @param pattern Data pattern.
 * @param reads_per_activation READs per aggressor activation (10-15).
 */
LongAggressorReport
analyzeLongAggressor(const core::Tester &tester, unsigned bank,
                     const std::vector<unsigned> &rows,
                     const rhmodel::DataPattern &pattern,
                     unsigned reads_per_activation);

} // namespace rhs::attack

#endif // RHS_ATTACK_LONG_AGGRESSOR_HH

/**
 * @file
 * rhs-snap/1 snapshot writer.
 *
 * A Builder is a thread-safe sink for computed RowEval curves: the
 * store layer (snap::ModuleStore) feeds every freshly computed curve
 * into it during a characterization run, and write() lays the whole
 * collection out as one snapshot file (see format.hh). Duplicate keys
 * are collapsed — the curve model is deterministic, so the first
 * record for a key is as good as any.
 *
 * The file is assembled in memory and written through a temp file +
 * rename, so a crashed or interrupted run never leaves a half-written
 * snapshot at the target path.
 */

#ifndef RHS_SNAP_WRITER_HH
#define RHS_SNAP_WRITER_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "rhmodel/analytic.hh"
#include "snap/format.hh"

namespace rhs::snap
{

class Builder
{
  public:
    struct Options
    {
        /** Overridable for compatibility tests only. */
        std::uint32_t version = kVersion;
        /** 0 = use curve_io::modelParamsFingerprint(). */
        std::uint64_t fingerprint = 0;
    };

    Builder();
    explicit Builder(Options options);

    /** Record one computed curve (thread-safe; duplicates ignored). */
    void add(std::span<const std::uint8_t> key,
             const rhmodel::RowEval &eval);

    /**
     * Write the collected records as a snapshot. On failure the
     * target path is left untouched and `error` says why.
     */
    bool write(const std::string &path, std::string &error) const;

    std::size_t records() const;

    /** Total encoded record bytes collected so far (digests included). */
    std::uint64_t recordBytes() const;

  private:
    const Options options;
    mutable std::mutex mutex;
    /** Encoded key -> encoded record. Ordered so ties in the index
     *  sort (equal hashes) resolve by key bytes deterministically. */
    std::map<std::vector<std::uint8_t>, std::vector<std::uint8_t>> curves;
    std::uint64_t totalRecordBytes = 0;
};

} // namespace rhs::snap

#endif // RHS_SNAP_WRITER_HH

/**
 * @file
 * Disk spill tier for the RowEval caches.
 *
 * When the sharded in-memory LRU evicts a curve, the spill tier
 * appends its encoded record (curve_io layout, digest included) to a
 * single bounded file; a later miss on the same key reads it back
 * instead of re-running the model. The file is process-private scratch
 * — truncated at open, indexed only in memory — so there is no
 * cross-process reuse and nothing to invalidate.
 *
 * Size is bounded by `maxBytes`: once the next record would not fit,
 * it is dropped (counted in `snap.spill.dropped`) — the spill is a
 * best-effort second tier, never an obligation.
 *
 * Trust model matches the snapshot reader: every read-back verifies
 * the record digest and compares full key bytes; a mismatch degrades
 * to a miss (live recompute) with one warning. Unlike snapshot
 * lookups, spilled curves are decoded into owned vectors — the file
 * is written with plain pwrite and not mapped, so there is nothing to
 * hold a zero-copy view on.
 */

#ifndef RHS_SNAP_SPILL_HH
#define RHS_SNAP_SPILL_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "rhmodel/analytic.hh"
#include "rhmodel/curve_io.hh"

namespace rhs::snap
{

class SpillTier
{
  public:
    /** Create (truncate) the spill file; nullptr + `error` on failure. */
    static std::shared_ptr<SpillTier> create(const std::string &path,
                                             std::uint64_t max_bytes,
                                             std::string &error);
    ~SpillTier();

    /**
     * Persist one evicted curve. Returns false when the record was
     * dropped (file full) or already spilled. Thread-safe.
     */
    bool store(std::span<const std::uint8_t> key,
               const rhmodel::RowEval &eval);

    /** Read a spilled curve back (owned copy), or nullptr. */
    rhmodel::RowEvalPtr load(std::span<const std::uint8_t> key);

    std::uint64_t stores() const { return storeCount.load(); }
    std::uint64_t hits() const { return hitCount.load(); }
    std::uint64_t misses() const { return missCount.load(); }
    std::uint64_t dropped() const { return droppedCount.load(); }
    std::uint64_t corrupt() const { return corruptCount.load(); }
    std::uint64_t bytesUsed() const;

    SpillTier(const SpillTier &) = delete;
    SpillTier &operator=(const SpillTier &) = delete;

  private:
    SpillTier(int fd, std::string path, std::uint64_t max_bytes);

    struct Slot
    {
        std::uint64_t offset;
        std::uint32_t bytes;
    };

    /** pread the slot and parse it; false on any I/O/format failure. */
    bool readSlot(const Slot &slot, std::vector<std::uint8_t> &buffer,
                  rhmodel::curve_io::RecordView &view);

    const int fd;
    const std::string path;
    const std::uint64_t maxBytes;

    mutable std::mutex mutex;
    /** Key hash -> slots (collisions resolved by key-byte compare). */
    std::unordered_map<std::uint64_t, std::vector<Slot>> slots;
    std::uint64_t nextOffset = 0;

    std::atomic<std::uint64_t> storeCount{0};
    std::atomic<std::uint64_t> hitCount{0};
    std::atomic<std::uint64_t> missCount{0};
    std::atomic<std::uint64_t> droppedCount{0};
    std::atomic<std::uint64_t> corruptCount{0};
    std::atomic<bool> warnedCorrupt{false};
    std::atomic<bool> warnedFull{false};
};

} // namespace rhs::snap

#endif // RHS_SNAP_SPILL_HH

/**
 * @file
 * rhs-snap/1 snapshot reader: mmap the file once, then serve curve
 * lookups with zero copy.
 *
 * open() validates the envelope up front — magic, version, endian
 * tag, model fingerprint, header digest, section bounds, and the
 * index digest — so every offset a lookup will ever trust is covered
 * before the first query. Record payloads are verified lazily: each
 * record's digest is checked once, on first access, and the result is
 * remembered in an atomic bitmap, so opening a huge snapshot stays
 * cheap and steady-state lookups pay no hashing at all.
 *
 * A lookup binary-searches the index by key hash, then compares the
 * full encoded key bytes inside the candidate record — a hash
 * collision is a miss, never a wrong curve. Served curves are
 * RowEval views whose spans point straight into the mapping; each
 * holds the Reader alive via shared_ptr, so the mapping outlives
 * every curve handed out.
 *
 * Failure policy (the snapshot is an accelerator, not a source of
 * truth): any validation failure — at open or per record — degrades
 * to a miss and the caller computes live. Corrupt records bump
 * `snap.reader.corrupt` and log one warning per reader.
 */

#ifndef RHS_SNAP_READER_HH
#define RHS_SNAP_READER_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "rhmodel/analytic.hh"
#include "snap/format.hh"
#include "util/mmap_file.hh"

namespace rhs::snap
{

class Reader : public std::enable_shared_from_this<Reader>
{
  public:
    /**
     * Map and validate a snapshot. Returns nullptr (with `error`
     * explaining why) on I/O failure or any envelope mismatch.
     */
    static std::shared_ptr<Reader> open(const std::string &path,
                                        std::string &error);

    /**
     * Look up one curve by its encoded key (curve_io::encodeKey).
     * Returns a zero-copy RowEval view, or nullptr on miss or on a
     * record that fails its digest. Thread-safe.
     */
    rhmodel::RowEvalPtr lookup(std::span<const std::uint8_t> key);

    /**
     * Re-verify the whole file: pages digest, file digest, and every
     * record digest. Used by audits and the corruption tests; normal
     * serving relies on the lazy per-record checks instead.
     */
    bool verifyDeep(std::string &error) const;

    const FileHeader &header() const { return fileHeader; }
    std::uint64_t hits() const { return hitCount.load(); }
    std::uint64_t misses() const { return missCount.load(); }
    std::uint64_t corrupt() const { return corruptCount.load(); }

    Reader(const Reader &) = delete;
    Reader &operator=(const Reader &) = delete;

  private:
    Reader() = default;

    const std::uint8_t *base() const;
    const IndexEntry *index() const;
    /** Digest-check a record the first time it is touched. */
    bool verified(std::size_t entry_index, const std::uint8_t *record,
                  std::size_t bytes);

    util::MappedFile file;
    FileHeader fileHeader;
    /** One bit per record: set once its digest has checked out. */
    std::vector<std::atomic<std::uint64_t>> verifiedBits;
    std::atomic<std::uint64_t> hitCount{0};
    std::atomic<std::uint64_t> missCount{0};
    std::atomic<std::uint64_t> corruptCount{0};
    std::atomic<bool> warnedCorrupt{false};
};

} // namespace rhs::snap

#endif // RHS_SNAP_READER_HH

/**
 * @file
 * The rhs-snap/1 on-disk container format.
 *
 * A snapshot persists precomputed RowEval curves (the FleetCache /
 * rowEval results) so a fresh process warm-starts by mmapping one
 * file instead of re-running the model. Layout (all offsets from the
 * start of the file):
 *
 *   [0, 4096)            FileHeader, zero-padded to one page
 *   [indexOffset, +indexBytes)   IndexEntry[recordCount], sorted
 *   [pagesOffset, +pagesBytes)   curve records (curve_io layout),
 *                                each 64-byte aligned
 *
 * Every section is page-aligned so the kernel can fault it in
 * lazily, and records are 64-byte aligned so the in-place f64 curve
 * arrays can be served as std::span<const double> with zero copy.
 *
 * Integrity is layered:
 *  - headerDigest (over the header with the field zeroed) and
 *    indexDigest are verified at open() — cheap, and they protect
 *    every offset the reader will ever trust;
 *  - each record carries its own digest, verified once on first
 *    access (lazy: opening a 10 GB snapshot stays milliseconds);
 *  - pagesDigest/fileDigest cover the full sections for explicit
 *    whole-file audits (Reader::verifyDeep).
 *
 * Compatibility: `magic` + `version` gate the envelope, `endianTag`
 * rejects foreign-endian files, and `fingerprint`
 * (curve_io::modelParamsFingerprint) rejects snapshots built by a
 * model whose parameters have since changed. Any mismatch fails
 * open() — the caller logs one warning and computes live.
 */

#ifndef RHS_SNAP_FORMAT_HH
#define RHS_SNAP_FORMAT_HH

#include <cstdint>
#include <cstring>

namespace rhs::snap
{

/** File magic: "RHSSNAP1". */
inline constexpr char kMagic[8] = {'R', 'H', 'S', 'S', 'N', 'A', 'P', '1'};

/** Envelope revision (the "1" in rhs-snap/1). */
inline constexpr std::uint32_t kVersion = 1;

/** Written natively; reads as 0x0807060504030201 on a foreign-endian
 *  host, which open() rejects. */
inline constexpr std::uint64_t kEndianTag = 0x0102030405060708ULL;

/** Section alignment (header page size). */
inline constexpr std::size_t kPageSize = 4096;

/** Record alignment inside the pages section. */
inline constexpr std::size_t kRecordAlign = 64;

/** Fixed file header (one per snapshot, padded to kPageSize). */
struct FileHeader
{
    char magic[8] = {};
    std::uint32_t version = 0;
    std::uint32_t headerBytes = 0; //!< sizeof(FileHeader).
    std::uint64_t endianTag = 0;
    std::uint64_t fingerprint = 0; //!< Model-parameter fingerprint.
    std::uint64_t recordCount = 0;
    std::uint64_t indexOffset = 0;
    std::uint64_t indexBytes = 0;
    std::uint64_t pagesOffset = 0;
    std::uint64_t pagesBytes = 0;
    std::uint64_t indexDigest = 0; //!< Over the index section.
    std::uint64_t pagesDigest = 0; //!< Over the pages section.
    std::uint64_t fileDigest = 0;  //!< Over [indexOffset, EOF).
    char git[48] = {};             //!< Builder's git describe (NUL-padded).
    std::uint64_t headerDigest = 0; //!< Over this struct, field zeroed.
};
static_assert(sizeof(FileHeader) == 152);

/**
 * One index entry: the key's 64-bit hash, and where its record lives
 * in the pages section. Sorted by (hash, key bytes); lookups binary
 * search the hash and resolve collisions by comparing full key bytes
 * in the record, so a wrong curve can never be returned.
 */
struct IndexEntry
{
    std::uint64_t hash = 0;
    std::uint64_t offset = 0; //!< Relative to pagesOffset.
    std::uint32_t bytes = 0;  //!< Whole record, digest included.
    std::uint32_t reserved = 0;
};
static_assert(sizeof(IndexEntry) == 24);

/** Round `n` up to `align` (a power of two). */
constexpr std::size_t
alignUp(std::size_t n, std::size_t align)
{
    return (n + align - 1) & ~(align - 1);
}

} // namespace rhs::snap

#endif // RHS_SNAP_FORMAT_HH

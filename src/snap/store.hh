/**
 * @file
 * Glue between the engine-side RowEvalStore hook (rhmodel) and the
 * snapshot tiers (snap).
 *
 * The AnalyticEngine knows nothing about files: it calls an abstract
 * RowEvalStore with module-local EvalKeys. The snapshot file and the
 * spill tier are shared across the whole fleet and key curves by the
 * *module-scoped* encoded key (curve_io::encodeKey). A ModuleStore is
 * the per-module adapter that closes that gap — it carries the
 * ModuleRef, prepends it to every key, and fans out to whichever
 * tiers are attached:
 *
 *   load():     snapshot reader first, then the spill tier;
 *   computed(): feeds the snapshot Builder (when one is collecting);
 *   evicted():  feeds the spill tier.
 *
 * A StoreFactory owns the shared tiers and hands out ModuleStores.
 * It is what rhs-bench / rhs-serve plug into
 * FleetCache::setStoreProvider — keeping the dependency one-way
 * (snap knows rhmodel; exp and serve know snap; rhmodel knows
 * neither).
 */

#ifndef RHS_SNAP_STORE_HH
#define RHS_SNAP_STORE_HH

#include <memory>

#include "rhmodel/analytic.hh"
#include "rhmodel/curve_io.hh"
#include "snap/reader.hh"
#include "snap/spill.hh"
#include "snap/writer.hh"

namespace rhs::snap
{

/** Per-module RowEvalStore over the shared snapshot/spill tiers. */
class ModuleStore : public rhmodel::RowEvalStore
{
  public:
    ModuleStore(rhmodel::curve_io::ModuleRef module,
                std::shared_ptr<Reader> reader,
                std::shared_ptr<Builder> builder,
                std::shared_ptr<SpillTier> spill);

    rhmodel::RowEvalPtr load(const rhmodel::EvalKey &key) override;
    void computed(const rhmodel::EvalKey &key,
                  const rhmodel::RowEvalPtr &eval) override;
    void evicted(const rhmodel::EvalKey &key,
                 const rhmodel::RowEvalPtr &eval) override;

  private:
    const rhmodel::curve_io::ModuleRef module;
    const std::shared_ptr<Reader> reader;
    const std::shared_ptr<Builder> builder;
    const std::shared_ptr<SpillTier> spill;
};

/**
 * Shared tiers for a fleet. Attach whichever tiers the run uses
 * (all optional), then install storeFor as the FleetCache's store
 * provider.
 */
class StoreFactory
{
  public:
    void attachReader(std::shared_ptr<Reader> r) { reader = std::move(r); }
    void attachBuilder(std::shared_ptr<Builder> b)
    {
        builder = std::move(b);
    }
    void attachSpill(std::shared_ptr<SpillTier> s) { spill = std::move(s); }

    /** True when at least one tier is attached. */
    bool any() const { return reader || builder || spill; }

    std::shared_ptr<rhmodel::RowEvalStore>
    storeFor(rhmodel::Mfr mfr, unsigned module_index,
             unsigned subarrays_per_bank) const;

  private:
    std::shared_ptr<Reader> reader;
    std::shared_ptr<Builder> builder;
    std::shared_ptr<SpillTier> spill;
};

} // namespace rhs::snap

#endif // RHS_SNAP_STORE_HH

#include "snap/store.hh"

#include <vector>

namespace rhs::snap
{

namespace
{

/** Per-thread scratch for the encoded module-scoped key. */
std::vector<std::uint8_t> &
encodedKey(const rhmodel::curve_io::ModuleRef &module,
           const rhmodel::EvalKey &key)
{
    thread_local std::vector<std::uint8_t> buffer;
    rhmodel::curve_io::encodeKey(module, key, buffer);
    return buffer;
}

} // namespace

ModuleStore::ModuleStore(rhmodel::curve_io::ModuleRef module,
                         std::shared_ptr<Reader> reader,
                         std::shared_ptr<Builder> builder,
                         std::shared_ptr<SpillTier> spill)
    : module(module), reader(std::move(reader)),
      builder(std::move(builder)), spill(std::move(spill))
{
}

rhmodel::RowEvalPtr
ModuleStore::load(const rhmodel::EvalKey &key)
{
    const auto &encoded = encodedKey(module, key);
    if (reader)
        if (auto eval = reader->lookup(encoded))
            return eval;
    if (spill)
        if (auto eval = spill->load(encoded))
            return eval;
    return nullptr;
}

void
ModuleStore::computed(const rhmodel::EvalKey &key,
                      const rhmodel::RowEvalPtr &eval)
{
    if (builder && eval)
        builder->add(encodedKey(module, key), *eval);
}

void
ModuleStore::evicted(const rhmodel::EvalKey &key,
                     const rhmodel::RowEvalPtr &eval)
{
    if (spill && eval)
        spill->store(encodedKey(module, key), *eval);
}

std::shared_ptr<rhmodel::RowEvalStore>
StoreFactory::storeFor(rhmodel::Mfr mfr, unsigned module_index,
                       unsigned subarrays_per_bank) const
{
    if (!any())
        return nullptr;
    rhmodel::curve_io::ModuleRef module;
    module.mfr = static_cast<std::uint32_t>(mfr);
    module.moduleIndex = module_index;
    module.subarrays = subarrays_per_bank;
    return std::make_shared<ModuleStore>(module, reader, builder, spill);
}

} // namespace rhs::snap

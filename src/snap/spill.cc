#include "snap/spill.hh"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "obs/metrics.hh"
#include "util/hash.hh"
#include "util/logging.hh"

namespace rhs::snap
{

namespace
{

struct SpillMetrics
{
    obs::Counter &stores;
    obs::Counter &hits;
    obs::Counter &misses;
    obs::Counter &dropped;
    obs::Counter &corrupt;

    SpillMetrics()
        : stores(obs::Registry::global().counter("snap.spill.stores")),
          hits(obs::Registry::global().counter("snap.spill.hits")),
          misses(obs::Registry::global().counter("snap.spill.misses")),
          dropped(obs::Registry::global().counter("snap.spill.dropped")),
          corrupt(obs::Registry::global().counter("snap.spill.corrupt"))
    {
    }

    static SpillMetrics &
    get()
    {
        static SpillMetrics metrics;
        return metrics;
    }
};

constexpr std::uint64_t
alignUp8(std::uint64_t n)
{
    return (n + 7) & ~std::uint64_t{7};
}

} // namespace

std::shared_ptr<SpillTier>
SpillTier::create(const std::string &path, std::uint64_t max_bytes,
                  std::string &error)
{
    const int fd = ::open(path.c_str(),
                          O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) {
        error = "cannot create spill file " + path + ": " +
                std::strerror(errno);
        return nullptr;
    }
    return std::shared_ptr<SpillTier>(
        new SpillTier(fd, path, max_bytes));
}

SpillTier::SpillTier(int fd, std::string path, std::uint64_t max_bytes)
    : fd(fd), path(std::move(path)), maxBytes(max_bytes)
{
}

SpillTier::~SpillTier()
{
    ::close(fd);
}

std::uint64_t
SpillTier::bytesUsed() const
{
    const std::lock_guard lock(mutex);
    return nextOffset;
}

bool
SpillTier::store(std::span<const std::uint8_t> key,
                 const rhmodel::RowEval &eval)
{
    thread_local std::vector<std::uint8_t> record;
    rhmodel::curve_io::encodeRecord(key, eval, record);
    const std::uint64_t hash = util::bytesHash64(key.data(), key.size());

    Slot slot;
    {
        const std::lock_guard lock(mutex);
        // Same key evicted again after a reload: the first spilled
        // copy already serves it, and records are immutable.
        if (const auto it = slots.find(hash); it != slots.end()) {
            thread_local std::vector<std::uint8_t> probe;
            rhmodel::curve_io::RecordView view;
            for (const Slot &existing : it->second)
                if (readSlot(existing, probe, view) &&
                    view.key.size() == key.size() &&
                    std::memcmp(view.key.data(), key.data(),
                                key.size()) == 0)
                    return false;
        }
        const std::uint64_t offset = alignUp8(nextOffset);
        if (offset + record.size() > maxBytes) {
            droppedCount.fetch_add(1, std::memory_order_relaxed);
            SpillMetrics::get().dropped.add();
            if (!warnedFull.exchange(true))
                util::warn("spill file ", path, " reached its ",
                           maxBytes, "-byte cap; further evictions "
                           "will be recomputed on demand");
            return false;
        }
        slot = {offset, static_cast<std::uint32_t>(record.size())};
        nextOffset = offset + record.size();
    }

    // Write outside the lock; the slot's byte range is reserved, and
    // the index entry is only published once the bytes are durable,
    // so a concurrent load can never read a half-written record.
    std::size_t written = 0;
    while (written < record.size()) {
        const ssize_t n = ::pwrite(
            fd, record.data() + written, record.size() - written,
            static_cast<off_t>(slot.offset + written));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            droppedCount.fetch_add(1, std::memory_order_relaxed);
            SpillMetrics::get().dropped.add();
            if (!warnedFull.exchange(true))
                util::warn("spill write to ", path,
                           " failed: ", std::strerror(errno));
            return false;
        }
        written += static_cast<std::size_t>(n);
    }

    {
        const std::lock_guard lock(mutex);
        slots[hash].push_back(slot);
    }
    storeCount.fetch_add(1, std::memory_order_relaxed);
    SpillMetrics::get().stores.add();
    return true;
}

bool
SpillTier::readSlot(const Slot &slot, std::vector<std::uint8_t> &buffer,
                    rhmodel::curve_io::RecordView &view)
{
    buffer.resize(slot.bytes);
    std::size_t done = 0;
    while (done < slot.bytes) {
        const ssize_t n =
            ::pread(fd, buffer.data() + done, slot.bytes - done,
                    static_cast<off_t>(slot.offset + done));
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return false;
        done += static_cast<std::size_t>(n);
    }
    // The spill is cheap scratch, so unlike the snapshot's
    // verify-once bitmap the digest is checked on every read.
    if (!rhmodel::curve_io::verifyRecordDigest(buffer.data(),
                                               buffer.size()))
        return false;
    return rhmodel::curve_io::parseRecord(buffer.data(), buffer.size(),
                                          view);
}

rhmodel::RowEvalPtr
SpillTier::load(std::span<const std::uint8_t> key)
{
    const std::uint64_t hash = util::bytesHash64(key.data(), key.size());
    std::vector<Slot> candidates;
    {
        const std::lock_guard lock(mutex);
        if (const auto it = slots.find(hash); it != slots.end())
            candidates = it->second;
    }

    thread_local std::vector<std::uint8_t> buffer;
    for (const Slot &slot : candidates) {
        rhmodel::curve_io::RecordView view;
        if (!readSlot(slot, buffer, view)) {
            corruptCount.fetch_add(1, std::memory_order_relaxed);
            SpillMetrics::get().corrupt.add();
            if (!warnedCorrupt.exchange(true))
                util::warn("spilled curve in ", path,
                           " failed verification; recomputing live");
            continue;
        }
        if (view.key.size() != key.size() ||
            std::memcmp(view.key.data(), key.data(), key.size()) != 0)
            continue; // Hash collision: not our key.

        auto eval = std::make_shared<rhmodel::RowEval>();
        eval->adopt({view.hcFirst.begin(), view.hcFirst.end()},
                    {view.loc.begin(), view.loc.end()});
        eval->vulnerableCells = view.vulnerableCells;
        eval->minHcFirst = view.minHcFirst;
        hitCount.fetch_add(1, std::memory_order_relaxed);
        SpillMetrics::get().hits.add();
        return eval;
    }
    missCount.fetch_add(1, std::memory_order_relaxed);
    SpillMetrics::get().misses.add();
    return nullptr;
}

} // namespace rhs::snap

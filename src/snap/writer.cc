#include "snap/writer.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "rhmodel/curve_io.hh"
#include "util/hash.hh"
#include "util/version.hh"

namespace rhs::snap
{

Builder::Builder() : Builder(Options{}) {}

Builder::Builder(Options options) : options(options) {}

void
Builder::add(std::span<const std::uint8_t> key,
             const rhmodel::RowEval &eval)
{
    std::vector<std::uint8_t> key_copy(key.begin(), key.end());
    std::vector<std::uint8_t> record;
    rhmodel::curve_io::encodeRecord(key, eval, record);

    const std::lock_guard lock(mutex);
    const auto [it, inserted] =
        curves.try_emplace(std::move(key_copy), std::move(record));
    if (inserted)
        totalRecordBytes += it->second.size();
}

std::size_t
Builder::records() const
{
    const std::lock_guard lock(mutex);
    return curves.size();
}

std::uint64_t
Builder::recordBytes() const
{
    const std::lock_guard lock(mutex);
    return totalRecordBytes;
}

bool
Builder::write(const std::string &path, std::string &error) const
{
    const std::lock_guard lock(mutex);

    // Index order: (key hash, key bytes). std::map already sorts by
    // key bytes, so a stable sort by hash gives the final order.
    struct Entry
    {
        std::uint64_t hash;
        const std::vector<std::uint8_t> *record;
    };
    std::vector<Entry> entries;
    entries.reserve(curves.size());
    for (const auto &[key, record] : curves)
        entries.push_back(
            {util::bytesHash64(key.data(), key.size()), &record});
    std::stable_sort(entries.begin(), entries.end(),
                     [](const Entry &a, const Entry &b) {
                         return a.hash < b.hash;
                     });

    FileHeader header;
    std::memcpy(header.magic, kMagic, sizeof(kMagic));
    header.version = options.version;
    header.headerBytes = sizeof(FileHeader);
    header.endianTag = kEndianTag;
    header.fingerprint = options.fingerprint != 0
                             ? options.fingerprint
                             : rhmodel::curve_io::modelParamsFingerprint();
    header.recordCount = entries.size();
    header.indexOffset = kPageSize;
    header.indexBytes = entries.size() * sizeof(IndexEntry);
    header.pagesOffset =
        alignUp(header.indexOffset + header.indexBytes, kPageSize);
    std::strncpy(header.git, util::gitDescribe(), sizeof(header.git) - 1);

    std::vector<IndexEntry> index(entries.size());
    std::uint64_t pages_bytes = 0;
    for (std::size_t i = 0; i < entries.size(); ++i) {
        pages_bytes = alignUp(pages_bytes, kRecordAlign);
        index[i].hash = entries[i].hash;
        index[i].offset = pages_bytes;
        index[i].bytes =
            static_cast<std::uint32_t>(entries[i].record->size());
        pages_bytes += entries[i].record->size();
    }
    header.pagesBytes = pages_bytes;

    std::vector<std::uint8_t> file(header.pagesOffset + pages_bytes, 0);
    if (!index.empty())
        std::memcpy(file.data() + header.indexOffset, index.data(),
                    header.indexBytes);
    for (std::size_t i = 0; i < entries.size(); ++i)
        std::memcpy(file.data() + header.pagesOffset + index[i].offset,
                    entries[i].record->data(), entries[i].record->size());

    header.indexDigest = util::bytesHash64(
        file.data() + header.indexOffset, header.indexBytes);
    header.pagesDigest = util::bytesHash64(
        file.data() + header.pagesOffset, header.pagesBytes);
    header.fileDigest =
        util::bytesHash64(file.data() + header.indexOffset,
                          file.size() - header.indexOffset);
    header.headerDigest = 0;
    header.headerDigest = util::bytesHash64(&header, sizeof(header));
    std::memcpy(file.data(), &header, sizeof(header));

    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            error = "cannot open " + tmp + " for writing";
            return false;
        }
        out.write(reinterpret_cast<const char *>(file.data()),
                  static_cast<std::streamsize>(file.size()));
        out.flush();
        if (!out) {
            error = "short write to " + tmp;
            std::remove(tmp.c_str());
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        error = "rename " + tmp + " -> " + path + ": " +
                std::strerror(errno);
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

} // namespace rhs::snap

#include "snap/reader.hh"

#include <algorithm>
#include <cstring>

#include "obs/metrics.hh"
#include "rhmodel/curve_io.hh"
#include "util/hash.hh"
#include "util/logging.hh"

namespace rhs::snap
{

namespace
{

struct ReaderMetrics
{
    obs::Counter &hits;
    obs::Counter &misses;
    obs::Counter &corrupt;

    ReaderMetrics()
        : hits(obs::Registry::global().counter("snap.reader.hits")),
          misses(obs::Registry::global().counter("snap.reader.misses")),
          corrupt(obs::Registry::global().counter("snap.reader.corrupt"))
    {
    }

    static ReaderMetrics &
    get()
    {
        static ReaderMetrics metrics;
        return metrics;
    }
};

} // namespace

std::shared_ptr<Reader>
Reader::open(const std::string &path, std::string &error)
{
    // Private ctor: construct directly, not via make_shared.
    std::shared_ptr<Reader> reader(new Reader);
    if (!reader->file.open(path, error))
        return nullptr;

    const std::uint8_t *base = reader->base();
    const std::size_t size = reader->file.size();
    if (size < sizeof(FileHeader)) {
        error = "file too small for an rhs-snap header";
        return nullptr;
    }
    FileHeader &header = reader->fileHeader;
    std::memcpy(&header, base, sizeof(header));

    if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
        error = "bad magic (not an rhs-snap file)";
        return nullptr;
    }
    if (header.version != kVersion) {
        error = "unsupported snapshot version " +
                std::to_string(header.version) + " (expected " +
                std::to_string(kVersion) + ")";
        return nullptr;
    }
    if (header.endianTag != kEndianTag) {
        error = "endianness mismatch (snapshot written on a "
                "foreign-endian host)";
        return nullptr;
    }
    if (header.headerBytes != sizeof(FileHeader)) {
        error = "header size mismatch";
        return nullptr;
    }
    FileHeader unsigned_header = header;
    unsigned_header.headerDigest = 0;
    if (util::bytesHash64(&unsigned_header, sizeof(unsigned_header)) !=
        header.headerDigest) {
        error = "header digest mismatch (corrupt header)";
        return nullptr;
    }
    const std::uint64_t expected_fingerprint =
        rhmodel::curve_io::modelParamsFingerprint();
    if (header.fingerprint != expected_fingerprint) {
        error = "model fingerprint mismatch (snapshot built against "
                "different model parameters)";
        return nullptr;
    }
    if (header.indexBytes != header.recordCount * sizeof(IndexEntry)) {
        error = "index size does not match record count";
        return nullptr;
    }
    if (header.indexOffset < sizeof(FileHeader) ||
        header.indexOffset % alignof(IndexEntry) != 0 ||
        header.indexOffset + header.indexBytes > size ||
        header.pagesOffset < header.indexOffset + header.indexBytes ||
        header.pagesOffset % kPageSize != 0 ||
        header.pagesOffset + header.pagesBytes > size) {
        error = "section bounds exceed the file";
        return nullptr;
    }
    if (util::bytesHash64(base + header.indexOffset, header.indexBytes) !=
        header.indexDigest) {
        error = "index digest mismatch (corrupt index)";
        return nullptr;
    }

    reader->verifiedBits = std::vector<std::atomic<std::uint64_t>>(
        (header.recordCount + 63) / 64);
    return reader;
}

const std::uint8_t *
Reader::base() const
{
    return static_cast<const std::uint8_t *>(file.data());
}

const IndexEntry *
Reader::index() const
{
    return reinterpret_cast<const IndexEntry *>(base() +
                                                fileHeader.indexOffset);
}

bool
Reader::verified(std::size_t entry_index, const std::uint8_t *record,
                 std::size_t bytes)
{
    const std::uint64_t mask = std::uint64_t{1} << (entry_index % 64);
    std::atomic<std::uint64_t> &word = verifiedBits[entry_index / 64];
    if (word.load(std::memory_order_acquire) & mask)
        return true;
    if (!rhmodel::curve_io::verifyRecordDigest(record, bytes)) {
        corruptCount.fetch_add(1, std::memory_order_relaxed);
        ReaderMetrics::get().corrupt.add();
        if (!warnedCorrupt.exchange(true))
            util::warn("snapshot record failed its digest check; "
                       "serving that curve from live computation");
        return false;
    }
    word.fetch_or(mask, std::memory_order_release);
    return true;
}

rhmodel::RowEvalPtr
Reader::lookup(std::span<const std::uint8_t> key)
{
    const std::uint64_t hash = util::bytesHash64(key.data(), key.size());
    const IndexEntry *begin = index();
    const IndexEntry *end = begin + fileHeader.recordCount;
    const IndexEntry *lo = std::lower_bound(
        begin, end, hash,
        [](const IndexEntry &e, std::uint64_t h) { return e.hash < h; });

    for (const IndexEntry *entry = lo;
         entry != end && entry->hash == hash; ++entry) {
        if (entry->offset + entry->bytes > fileHeader.pagesBytes ||
            entry->offset % kRecordAlign != 0)
            continue;
        const std::uint8_t *record =
            base() + fileHeader.pagesOffset + entry->offset;
        rhmodel::curve_io::RecordView view;
        if (!rhmodel::curve_io::parseRecord(record, entry->bytes, view))
            continue;
        if (view.key.size() != key.size() ||
            std::memcmp(view.key.data(), key.data(), key.size()) != 0)
            continue; // Hash collision: not our key.
        if (!verified(static_cast<std::size_t>(entry - begin), record,
                      entry->bytes))
            break; // Corrupt record: fall back to live computation.

        auto eval = std::make_shared<rhmodel::RowEval>();
        eval->view(view.hcFirst, view.loc, shared_from_this());
        eval->vulnerableCells = view.vulnerableCells;
        eval->minHcFirst = view.minHcFirst;
        hitCount.fetch_add(1, std::memory_order_relaxed);
        ReaderMetrics::get().hits.add();
        return eval;
    }
    missCount.fetch_add(1, std::memory_order_relaxed);
    ReaderMetrics::get().misses.add();
    return nullptr;
}

bool
Reader::verifyDeep(std::string &error) const
{
    const std::uint8_t *b = base();
    if (util::bytesHash64(b + fileHeader.pagesOffset,
                          fileHeader.pagesBytes) != fileHeader.pagesDigest) {
        error = "pages digest mismatch";
        return false;
    }
    if (util::bytesHash64(b + fileHeader.indexOffset,
                          file.size() - fileHeader.indexOffset) !=
        fileHeader.fileDigest) {
        error = "file digest mismatch";
        return false;
    }
    const IndexEntry *entries = index();
    for (std::uint64_t i = 0; i < fileHeader.recordCount; ++i) {
        const IndexEntry &entry = entries[i];
        if (entry.offset + entry.bytes > fileHeader.pagesBytes ||
            !rhmodel::curve_io::verifyRecordDigest(
                b + fileHeader.pagesOffset + entry.offset, entry.bytes)) {
            error = "record " + std::to_string(i) + " digest mismatch";
            return false;
        }
    }
    return true;
}

} // namespace rhs::snap

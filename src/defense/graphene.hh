/**
 * @file
 * Graphene: Misra-Gries frequent-element tracking (Park et al.,
 * MICRO 2020).
 *
 * Maintains k exact counters with the Misra-Gries summary; any row
 * activated more than threshold times is guaranteed to be tracked
 * (frequency underestimation is bounded by the spillover counter).
 * When a tracked row's estimated count crosses the threshold, its
 * neighbours are refreshed and the counter rebased.
 */

#ifndef RHS_DEFENSE_GRAPHENE_HH
#define RHS_DEFENSE_GRAPHENE_HH

#include <map>
#include <unordered_map>

#include "defense/defense.hh"

namespace rhs::defense
{

/** Graphene counter table for one bank group. */
class Graphene : public Defense
{
  public:
    /**
     * @param threshold Activation count triggering a victim refresh;
     *        sized from HCfirst with a safety margin.
     * @param window_activations Activations in a refresh window; with
     *        the threshold it sizes the table: k = window / threshold.
     */
    Graphene(std::uint64_t threshold, std::uint64_t window_activations);

    std::string name() const override { return "Graphene"; }
    DefenseAction onActivation(const Activation &activation) override;
    void reset() override;
    double storageBits() const override;

    /** Counter table capacity (Misra-Gries k). */
    std::size_t tableCapacity() const { return capacity; }

    /** Estimated count of a row (includes spillover lower bound). */
    std::uint64_t estimatedCount(unsigned bank, unsigned row) const;

    /**
     * Misra-Gries guarantee (tested): true count - estimate is at most
     * the spillover counter.
     */
    std::uint64_t spillover() const { return spill; }

  private:
    std::uint64_t key(unsigned bank, unsigned row) const;

    std::uint64_t threshold;
    std::uint64_t window;
    std::size_t capacity;
    std::uint64_t spill = 0;
    //! row-key -> (estimated count, next trigger level).
    std::unordered_map<std::uint64_t,
                       std::pair<std::uint64_t, std::uint64_t>> table;
};

} // namespace rhs::defense

#endif // RHS_DEFENSE_GRAPHENE_HH

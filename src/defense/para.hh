/**
 * @file
 * PARA: Probabilistic Adjacent Row Activation (Kim et al., ISCA 2014).
 *
 * On every activation, with probability p, the memory controller
 * refreshes one of the activated row's neighbours. Stateless (near-zero
 * area) but p must grow as HCfirst shrinks, costing performance; §8.2
 * Improvement 1 notes the overhead can be halved for the 95% of rows
 * with 2x the worst-case HCfirst by using per-row-class probabilities.
 */

#ifndef RHS_DEFENSE_PARA_HH
#define RHS_DEFENSE_PARA_HH

#include "defense/defense.hh"

namespace rhs::defense
{

/** PARA with a configurable refresh probability. */
class Para : public Defense
{
  public:
    /**
     * @param probability Per-activation neighbour-refresh probability.
     * @param seed RNG seed (deterministic evaluation).
     */
    explicit Para(double probability, std::uint64_t seed = 1);

    std::string name() const override { return "PARA"; }
    DefenseAction onActivation(const Activation &activation) override;
    void reset() override;
    double storageBits() const override { return 64.0; } // RNG state.

    /**
     * Probability needed so that a victim hammered hc_first times is
     * refreshed with failure probability at most `failure`:
     * (1 - p/2)^HC <= failure for a double-sided attack where each
     * aggressor activation refreshes the shared victim with p/2.
     */
    static double probabilityFor(double hc_first,
                                 double failure = 1e-15);

  private:
    double probability;
    std::uint64_t rngState;
};

} // namespace rhs::defense

#endif // RHS_DEFENSE_PARA_HH

#include "defense/graphene.hh"

#include <algorithm>

#include "util/logging.hh"

namespace rhs::defense
{

Graphene::Graphene(std::uint64_t threshold,
                   std::uint64_t window_activations)
    : threshold(threshold), window(window_activations)
{
    RHS_ASSERT(threshold > 0, "Graphene threshold must be positive");
    RHS_ASSERT(window_activations >= threshold,
               "window must cover at least one threshold period");
    capacity = static_cast<std::size_t>(window / threshold) + 1;
}

std::uint64_t
Graphene::key(unsigned bank, unsigned row) const
{
    return (static_cast<std::uint64_t>(bank) << 32) | row;
}

DefenseAction
Graphene::onActivation(const Activation &activation)
{
    DefenseAction action;
    const auto k = key(activation.bank, activation.row);

    auto it = table.find(k);
    if (it != table.end()) {
        ++it->second.first;
    } else if (table.size() < capacity) {
        // Insert with the spillover as the count lower bound
        // (Misra-Gries: an untracked element may have been seen up to
        // `spill` times).
        it = table.emplace(k, std::make_pair(spill + 1,
                                             threshold)).first;
    } else {
        // Table full: decrement-all step, realized as a spillover
        // increment; evict entries that fall to the spillover level.
        ++spill;
        for (auto entry = table.begin(); entry != table.end();) {
            if (entry->second.first <= spill)
                entry = table.erase(entry);
            else
                ++entry;
        }
        return action; // This activation is absorbed by the spillover.
    }

    auto &[count, trigger] = it->second;
    if (count >= trigger) {
        // Preventively refresh both neighbours and rearm.
        if (activation.row > 0)
            action.refreshRows.push_back(activation.row - 1);
        action.refreshRows.push_back(activation.row + 1);
        trigger += threshold;
    }
    return action;
}

void
Graphene::reset()
{
    table.clear();
    spill = 0;
}

double
Graphene::storageBits() const
{
    // Row address (32b) + counter (32b) per entry, plus the spillover.
    return static_cast<double>(capacity) * 64.0 + 32.0;
}

std::uint64_t
Graphene::estimatedCount(unsigned bank, unsigned row) const
{
    auto it = table.find(key(bank, row));
    return it == table.end() ? spill : it->second.first;
}

} // namespace rhs::defense

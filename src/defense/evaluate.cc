#include "defense/evaluate.hh"

#include <algorithm>

#include "core/hammer_session.hh"
#include "util/logging.hh"

namespace rhs::defense
{

namespace
{

/**
 * Issue the hammer loop command by command, consulting the defense
 * before every activation and delivering periodic refresh commands.
 * Returns the evaluation counts.
 */
EvaluationResult
drive(rhmodel::SimulatedDimm &dimm, Defense *defense,
      const rhmodel::DataPattern &pattern, const AttackConfig &config)
{
    auto &module = dimm.module();
    const auto &timing = module.timing();
    const auto &mapping = module.rowMapping();
    const unsigned rows_per_bank = module.geometry().rowsPerBank();

    // Resolve the attack geometry.
    rhmodel::HammerAttack attack = config.attack;
    if (attack.aggressorRows.empty()) {
        const unsigned victim = config.victimPhysicalRow;
        RHS_ASSERT(victim >= 1 && victim + 1 < rows_per_bank,
                   "victim needs both neighbours");
        attack = rhmodel::HammerAttack::doubleSided(config.bank, victim);
    }
    RHS_ASSERT(!attack.aggressorRows.empty());
    for (unsigned aggressor : attack.aggressorRows)
        RHS_ASSERT(aggressor < rows_per_bank, "aggressor out of range");

    // Install the pattern over the whole attacked neighbourhood.
    const unsigned lo = *std::min_element(attack.aggressorRows.begin(),
                                          attack.aggressorRows.end());
    const unsigned hi = *std::max_element(attack.aggressorRows.begin(),
                                          attack.aggressorRows.end());
    const unsigned radius = std::max(8u, hi - lo + 2);

    module.resetTiming(); // Each evaluation restarts its clock.
    core::installPattern(dimm, attack.bank, attack.patternCenter,
                         pattern, radius);

    auto &injector = dimm.injector();
    injector.setTemperature(config.conditions.temperature);
    injector.setTrial(config.trial);
    injector.beginTest();
    if (defense)
        defense->reset();

    const auto on_cycles = timing.toCycles(
        config.conditions.tAggOn > 0 ? config.conditions.tAggOn
                                     : timing.tRAS);
    const auto off_cycles = timing.toCycles(
        config.conditions.tAggOff > 0 ? config.conditions.tAggOff
                                      : timing.tRP);

    EvaluationResult result;
    dram::Cycles cycle = 0;
    std::uint64_t acts_since_ref = 0;

    auto apply_refreshes = [&](const std::vector<unsigned> &rows) {
        for (unsigned refresh_row : rows) {
            if (refresh_row < rows_per_bank) {
                injector.refreshRow(attack.bank, refresh_row);
                ++result.refreshes;
            }
        }
    };

    for (std::uint64_t h = 0; h < config.hammers; ++h) {
        for (unsigned aggressor : attack.aggressorRows) {
            bool suppressed = false;
            if (defense) {
                const auto action =
                    defense->onActivation({attack.bank, aggressor});
                apply_refreshes(action.refreshRows);
                if (action.throttle) {
                    // The controller delays the blacklisted ACT past
                    // the refresh window; within this test that means
                    // the activation never lands.
                    suppressed = true;
                    ++result.throttledActs;
                }
            }

            if (!suppressed) {
                dram::Command act;
                act.type = dram::CommandType::Act;
                act.bank = attack.bank;
                act.row = mapping.toLogical(aggressor);
                act.cycle = cycle;
                module.issue(act);

                dram::Command pre;
                pre.type = dram::CommandType::Pre;
                pre.bank = attack.bank;
                pre.cycle = cycle + on_cycles;
                module.issue(pre);
                ++result.activations;
            }
            cycle += on_cycles + off_cycles;

            // Periodic refresh command (disabled in the paper's own
            // tests; enabled when evaluating in-DRAM TRR or the
            // refresh-rate mitigation).
            if (config.refreshEveryActivations > 0 &&
                ++acts_since_ref >= config.refreshEveryActivations) {
                acts_since_ref = 0;
                if (config.refreshRestoresAllRows) {
                    injector.refreshAllRows();
                    ++result.refreshes;
                }
                if (defense)
                    apply_refreshes(defense->onRefresh());
            }
        }
    }

    result.flips = injector.flipsApplied();
    if (defense)
        result.storageBits = defense->storageBits();
    return result;
}

} // namespace

EvaluationResult
evaluateDefense(rhmodel::SimulatedDimm &dimm, Defense &defense,
                const rhmodel::DataPattern &pattern,
                const AttackConfig &config)
{
    return drive(dimm, &defense, pattern, config);
}

EvaluationResult
evaluateUndefended(rhmodel::SimulatedDimm &dimm,
                   const rhmodel::DataPattern &pattern,
                   const AttackConfig &config)
{
    return drive(dimm, nullptr, pattern, config);
}

} // namespace rhs::defense

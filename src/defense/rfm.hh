/**
 * @file
 * Refresh Management (RFM), §2.3 — the DDR5/LPDDR5 feature the paper
 * highlights as the vehicle for future on-die defenses.
 *
 * The memory controller counts activations per bank (the Rolling
 * Accumulated ACT counter, RAA) and issues an RFM command when the
 * count reaches RAAIMT; the RFM gives the in-DRAM mechanism (e.g.
 * Silver Bullet) guaranteed time to refresh the victims of recently
 * activated rows. Unlike sampling TRR, the in-DRAM queue is sized so
 * that no aggressor can slip through between RFMs.
 */

#ifndef RHS_DEFENSE_RFM_HH
#define RHS_DEFENSE_RFM_HH

#include <deque>
#include <unordered_map>

#include "defense/defense.hh"

namespace rhs::defense
{

/** RAA-counter-driven refresh management with an in-DRAM queue. */
class Rfm : public Defense
{
  public:
    /**
     * @param raa_threshold Activations per bank between RFM commands
     *        (RAAIMT). Must be <= queue_capacity * threshold margin to
     *        guarantee coverage.
     * @param queue_capacity Distinct rows the in-DRAM queue holds.
     */
    Rfm(std::uint64_t raa_threshold, unsigned queue_capacity);

    std::string name() const override { return "RFM+SilverBullet"; }
    DefenseAction onActivation(const Activation &activation) override;
    void reset() override;
    double storageBits() const override;

    /** RFM commands issued so far. */
    std::uint64_t rfmCount() const { return rfms; }

    /**
     * True when the configuration is airtight: every aggressor
     * activated since the last RFM is still queued when the next RFM
     * fires (queue never overflows within one RAA window).
     */
    bool
    providesDeterministicProtection() const
    {
        return raaThreshold <= queueCapacity;
    }

  private:
    std::uint64_t raaThreshold;
    unsigned queueCapacity;
    std::uint64_t rfms = 0;
    //! Per-bank RAA counters.
    std::unordered_map<unsigned, std::uint64_t> raa;
    //! In-DRAM queue of recently activated distinct rows.
    std::deque<unsigned> queue;
    bool overflowed = false;
};

} // namespace rhs::defense

#endif // RHS_DEFENSE_RFM_HH

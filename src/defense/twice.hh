/**
 * @file
 * TWiCe: Time Window Counters (Lee et al., ISCA 2019), simplified.
 *
 * Counts activations per row in a refresh window, but keeps the table
 * small by periodically pruning rows whose activation count is too low
 * to ever reach the RowHammer threshold within the remaining window.
 */

#ifndef RHS_DEFENSE_TWICE_HH
#define RHS_DEFENSE_TWICE_HH

#include <unordered_map>

#include "defense/defense.hh"

namespace rhs::defense
{

/** TWiCe-style pruned counter table. */
class Twice : public Defense
{
  public:
    /**
     * @param threshold Activation count triggering victim refresh.
     * @param window_activations Activations per refresh window.
     * @param prune_interval Activations between pruning passes.
     */
    Twice(std::uint64_t threshold, std::uint64_t window_activations,
          std::uint64_t prune_interval);

    std::string name() const override { return "TWiCe"; }
    DefenseAction onActivation(const Activation &activation) override;
    void reset() override;
    double storageBits() const override;

    /** Live table size (for the pruning-effectiveness tests). */
    std::size_t tableSize() const { return table.size(); }

    /** High-water mark of the table size. */
    std::size_t tableHighWater() const { return highWater; }

  private:
    void prune();

    std::uint64_t threshold;
    std::uint64_t window;
    std::uint64_t pruneInterval;
    std::uint64_t tick = 0;

    struct Entry
    {
        std::uint64_t count = 0;
        std::uint64_t firstSeenTick = 0;
        std::uint64_t trigger = 0;
    };
    std::unordered_map<std::uint64_t, Entry> table;
    std::size_t highWater = 0;
};

} // namespace rhs::defense

#endif // RHS_DEFENSE_TWICE_HH

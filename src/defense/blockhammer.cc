#include "defense/blockhammer.hh"

#include <algorithm>

#include "util/hash.hh"
#include "util/logging.hh"

namespace rhs::defense
{

CountingBloomFilter::CountingBloomFilter(std::size_t counters,
                                         unsigned hashes,
                                         std::uint64_t seed)
    : counters(counters, 0), hashes(hashes), seed(seed)
{
    RHS_ASSERT(counters > 0 && hashes > 0);
}

std::size_t
CountingBloomFilter::index(std::uint64_t key, unsigned hash) const
{
    return static_cast<std::size_t>(util::hashTuple(seed, key, hash) %
                                    counters.size());
}

void
CountingBloomFilter::insert(std::uint64_t key)
{
    for (unsigned h = 0; h < hashes; ++h)
        ++counters[index(key, h)];
}

std::uint64_t
CountingBloomFilter::estimate(std::uint64_t key) const
{
    std::uint64_t lowest = counters[index(key, 0)];
    for (unsigned h = 1; h < hashes; ++h)
        lowest = std::min(lowest, counters[index(key, h)]);
    return lowest;
}

void
CountingBloomFilter::clear()
{
    std::fill(counters.begin(), counters.end(), 0);
}

BlockHammer::BlockHammer(std::uint64_t blacklist_threshold,
                         std::uint64_t window_activations,
                         std::size_t counters, unsigned hashes)
    : blacklistThreshold(blacklist_threshold),
      countersPerFilter(counters),
      epochLength(std::max<std::uint64_t>(1, window_activations / 2)),
      filters{CountingBloomFilter(counters, hashes, 0xb10cu),
              CountingBloomFilter(counters, hashes, 0x4a44u)}
{
    RHS_ASSERT(blacklist_threshold > 0);
}

std::uint64_t
BlockHammer::key(const Activation &activation) const
{
    return (static_cast<std::uint64_t>(activation.bank) << 32) |
           activation.row;
}

DefenseAction
BlockHammer::onActivation(const Activation &activation)
{
    DefenseAction action;
    ++tick;
    if (tick % epochLength == 0) {
        // Rotate epochs: the stale filter is cleared and becomes the
        // new active one; the other keeps history of the last epoch.
        activeFilter ^= 1u;
        filters[activeFilter].clear();
    }

    const auto k = key(activation);
    filters[activeFilter].insert(k);

    if (estimate(activation.bank, activation.row) >= blacklistThreshold) {
        action.throttle = true;
        ++throttled;
    }
    return action;
}

void
BlockHammer::reset()
{
    filters[0].clear();
    filters[1].clear();
    tick = 0;
    throttled = 0;
    activeFilter = 0;
}

double
BlockHammer::storageBits() const
{
    // Two filters x counters x 16-bit saturating counters (the
    // hardware proposal uses dual CBFs sized per bank).
    return 2.0 * static_cast<double>(countersPerFilter) * 16.0;
}

std::uint64_t
BlockHammer::estimate(unsigned bank, unsigned row) const
{
    Activation activation{bank, row};
    const auto k = key(activation);
    return std::max(filters[0].estimate(k), filters[1].estimate(k));
}

} // namespace rhs::defense

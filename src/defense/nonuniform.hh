/**
 * @file
 * Non-uniform per-row-class defenses (Defense Improvement 1, §8.2).
 *
 * Obsv. 12: only ~5% of rows are ~2x more vulnerable than the rest.
 * Instead of configuring a defense for the worst-case HCfirst of the
 * whole bank, the bank's few weak rows (identified by profiling) are
 * protected at the tight threshold while everything else uses a
 * threshold twice as large, shrinking the counter structures.
 */

#ifndef RHS_DEFENSE_NONUNIFORM_HH
#define RHS_DEFENSE_NONUNIFORM_HH

#include <memory>
#include <unordered_set>

#include "defense/defense.hh"

namespace rhs::defense
{

/** Routes activations to a weak-row or strong-row protection path. */
class NonUniform : public Defense
{
  public:
    /**
     * @param strong_path Defense configured at the relaxed threshold
     *        (e.g. 2x HCfirst) protecting the bulk of the rows.
     * @param weak_path Defense configured at the worst-case threshold,
     *        consulted only for profiled weak rows.
     * @param weak_rows Physical rows needing worst-case protection.
     */
    NonUniform(std::unique_ptr<Defense> strong_path,
               std::unique_ptr<Defense> weak_path,
               std::unordered_set<unsigned> weak_rows);

    std::string name() const override;
    DefenseAction onActivation(const Activation &activation) override;
    void reset() override;
    double storageBits() const override;

  private:
    std::unique_ptr<Defense> strongPath;
    std::unique_ptr<Defense> weakPath;
    std::unordered_set<unsigned> weakRows;
};

/** Counter-area cost model for threshold-scaled defenses. */
struct AreaCostReport
{
    double uniformBits = 0.0;    //!< Whole bank at worst-case HCfirst.
    double nonUniformBits = 0.0; //!< Split configuration.
    double savingsPct = 0.0;     //!< 100 * (1 - nonUniform/uniform).
};

/**
 * Model the Graphene-style counter cost of Improvement 1: a
 * Misra-Gries table's size is window/threshold entries, so protecting
 * 95% of rows at 2x the threshold roughly halves the main table, with
 * a small side structure for the profiled weak rows.
 *
 * @param worst_hc_first The bank's minimum HCfirst.
 * @param weak_row_fraction Fraction of rows kept at worst case (0.05).
 * @param relaxed_multiplier Threshold multiplier for the rest (2.0).
 * @param window_activations Activations per refresh window.
 * @param entry_bits Bits per counter entry.
 */
AreaCostReport counterAreaSavings(double worst_hc_first,
                                  double weak_row_fraction,
                                  double relaxed_multiplier,
                                  double window_activations,
                                  double entry_bits = 64.0);

} // namespace rhs::defense

#endif // RHS_DEFENSE_NONUNIFORM_HH

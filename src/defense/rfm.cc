#include "defense/rfm.hh"

#include <algorithm>

#include "util/logging.hh"

namespace rhs::defense
{

Rfm::Rfm(std::uint64_t raa_threshold, unsigned queue_capacity)
    : raaThreshold(raa_threshold), queueCapacity(queue_capacity)
{
    RHS_ASSERT(raaThreshold > 0 && queueCapacity > 0);
}

DefenseAction
Rfm::onActivation(const Activation &activation)
{
    DefenseAction action;

    // In-DRAM side: remember the row (distinct, recency-ordered).
    auto it = std::find(queue.begin(), queue.end(), activation.row);
    if (it != queue.end())
        queue.erase(it);
    queue.push_back(activation.row);
    while (queue.size() > queueCapacity) {
        queue.pop_front();
        overflowed = true;
    }

    // Controller side: RAA accounting per bank.
    if (++raa[activation.bank] >= raaThreshold) {
        raa[activation.bank] = 0;
        ++rfms;
        // The RFM window lets the device drain its queue: refresh the
        // neighbours of every queued row.
        for (unsigned row : queue) {
            if (row > 0)
                action.refreshRows.push_back(row - 1);
            action.refreshRows.push_back(row + 1);
        }
        queue.clear();
        overflowed = false;
    }
    return action;
}

void
Rfm::reset()
{
    raa.clear();
    queue.clear();
    rfms = 0;
    overflowed = false;
}

double
Rfm::storageBits() const
{
    // Queue entries (32b each) plus one RAA counter per bank (16b,
    // assume 16 banks) on the controller side.
    return static_cast<double>(queueCapacity) * 32.0 + 16.0 * 16.0;
}

} // namespace rhs::defense

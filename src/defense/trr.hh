/**
 * @file
 * In-DRAM Target Row Refresh (TRR), §2.3.
 *
 * DDR4 vendors ship proprietary TRR implementations: a small tracker
 * samples aggressor candidates from the activation stream and, when
 * the device receives a periodic refresh command, piggybacks refreshes
 * of the tracked rows' neighbours. TRRespass (Frigo et al., S&P 2020)
 * showed the trackers have tiny capacities, so *many-sided* patterns
 * with more aggressors than tracker entries still produce bit flips —
 * which is why the paper disables TRR and why this model exists: to
 * demonstrate the bypass.
 */

#ifndef RHS_DEFENSE_TRR_HH
#define RHS_DEFENSE_TRR_HH

#include <deque>

#include "defense/defense.hh"

namespace rhs::defense
{

/** Sampling-based in-DRAM TRR with a bounded aggressor tracker. */
class InDramTrr : public Defense
{
  public:
    /**
     * @param tracker_capacity Distinct rows the tracker can hold (real
     *        devices: one to a handful of entries).
     * @param sampling_interval Track every Nth activation (1 = all).
     */
    explicit InDramTrr(unsigned tracker_capacity,
                       unsigned sampling_interval = 1);

    std::string name() const override { return "In-DRAM TRR"; }

    /** Never refreshes inline; only samples into the tracker. */
    DefenseAction onActivation(const Activation &activation) override;

    /** Refresh the neighbours of all tracked rows, then clear. */
    std::vector<unsigned> onRefresh() override;

    void reset() override;
    double storageBits() const override;

    /** Rows currently tracked (tests). */
    std::size_t trackedCount() const { return tracker.size(); }

  private:
    unsigned capacity;
    unsigned samplingInterval;
    std::uint64_t tick = 0;
    //! FIFO of distinct candidate rows (oldest evicted first).
    std::deque<unsigned> tracker;
};

} // namespace rhs::defense

#endif // RHS_DEFENSE_TRR_HH

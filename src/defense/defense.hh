/**
 * @file
 * Common interface for RowHammer defense mechanisms.
 *
 * A defense observes the activation command stream and decides
 * 1) which victim rows to preventively refresh, and 2) whether an
 * activation should be throttled (delayed). The paper's defense
 * implications (§8.2) are evaluated against these implementations.
 */

#ifndef RHS_DEFENSE_DEFENSE_HH
#define RHS_DEFENSE_DEFENSE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace rhs::defense
{

/** A single observed or attempted row activation. */
struct Activation
{
    unsigned bank = 0;
    unsigned row = 0; //!< Physical row address.
};

/** Defense response to one activation. */
struct DefenseAction
{
    //! Physical rows whose charge should be preventively refreshed.
    std::vector<unsigned> refreshRows;
    //! True when the activation should be delayed (BlockHammer-style
    //! throttling); the memory controller enforces the delay.
    bool throttle = false;
};

/** Abstract RowHammer defense. */
class Defense
{
  public:
    virtual ~Defense() = default;

    /** Mechanism name for reports. */
    virtual std::string name() const = 0;

    /** Observe one activation and react. */
    virtual DefenseAction onActivation(const Activation &activation) = 0;

    /**
     * Observe a periodic refresh command. In-DRAM mitigations (TRR)
     * piggyback their victim refreshes on these; the returned rows are
     * preventively refreshed. Default: nothing.
     */
    virtual std::vector<unsigned>
    onRefresh()
    {
        return {};
    }

    /** Reset all internal state (start of a refresh window). */
    virtual void reset() = 0;

    /**
     * Storage the mechanism needs, in bits (the area proxy used for
     * the Defense Improvement 1 comparison).
     */
    virtual double storageBits() const = 0;
};

} // namespace rhs::defense

#endif // RHS_DEFENSE_DEFENSE_HH

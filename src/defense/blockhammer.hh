/**
 * @file
 * BlockHammer: counting-Bloom-filter blacklisting with throttling
 * (Yağlıkçı et al., HPCA 2021), simplified.
 *
 * Two counting Bloom filters alternate in epochs of half a refresh
 * window; a row's activation-count estimate is the minimum counter it
 * hashes to across the live filters. Rows whose estimate exceeds the
 * blacklist threshold are throttled: the memory controller delays
 * their activations so the RowHammer threshold cannot be reached
 * within the window. No victim refreshes are ever issued.
 */

#ifndef RHS_DEFENSE_BLOCKHAMMER_HH
#define RHS_DEFENSE_BLOCKHAMMER_HH

#include <array>
#include <vector>

#include "defense/defense.hh"

namespace rhs::defense
{

/** Counting Bloom filter (exposed for unit tests). */
class CountingBloomFilter
{
  public:
    /**
     * @param counters Number of counters.
     * @param hashes Hash functions per insert.
     * @param seed Hash seed.
     */
    CountingBloomFilter(std::size_t counters, unsigned hashes,
                        std::uint64_t seed);

    /** Insert one occurrence of a key. */
    void insert(std::uint64_t key);

    /** Estimated (never under-) count of a key. */
    std::uint64_t estimate(std::uint64_t key) const;

    /** Zero all counters. */
    void clear();

  private:
    std::size_t index(std::uint64_t key, unsigned hash) const;

    std::vector<std::uint64_t> counters;
    unsigned hashes;
    std::uint64_t seed;
};

/** BlockHammer blacklisting defense. */
class BlockHammer : public Defense
{
  public:
    /**
     * @param blacklist_threshold Estimated count that blacklists a row
     *        (configured as a fraction of HCfirst).
     * @param window_activations Activations per refresh window (epoch
     *        length is half of this).
     * @param counters Counters per Bloom filter.
     * @param hashes Hash functions per filter.
     */
    BlockHammer(std::uint64_t blacklist_threshold,
                std::uint64_t window_activations,
                std::size_t counters = 1024, unsigned hashes = 3);

    std::string name() const override { return "BlockHammer"; }
    DefenseAction onActivation(const Activation &activation) override;
    void reset() override;
    double storageBits() const override;

    /** Current estimate of a row (max over the live filters). */
    std::uint64_t estimate(unsigned bank, unsigned row) const;

    /** Total throttled activations. */
    std::uint64_t throttledCount() const { return throttled; }

  private:
    std::uint64_t key(const Activation &activation) const;

    std::uint64_t blacklistThreshold;
    std::size_t countersPerFilter;
    std::uint64_t epochLength;
    std::uint64_t tick = 0;
    std::uint64_t throttled = 0;
    std::array<CountingBloomFilter, 2> filters;
    unsigned activeFilter = 0;
};

} // namespace rhs::defense

#endif // RHS_DEFENSE_BLOCKHAMMER_HH

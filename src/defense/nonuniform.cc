#include "defense/nonuniform.hh"

#include "util/logging.hh"

namespace rhs::defense
{

NonUniform::NonUniform(std::unique_ptr<Defense> strong_path,
                       std::unique_ptr<Defense> weak_path,
                       std::unordered_set<unsigned> weak_rows)
    : strongPath(std::move(strong_path)), weakPath(std::move(weak_path)),
      weakRows(std::move(weak_rows))
{
    RHS_ASSERT(strongPath && weakPath);
}

std::string
NonUniform::name() const
{
    return "NonUniform(" + strongPath->name() + ")";
}

DefenseAction
NonUniform::onActivation(const Activation &activation)
{
    // An aggressor's victims may be weak regardless of the aggressor's
    // own class, so weak-neighbour activations go to the tight path.
    const bool touches_weak =
        weakRows.count(activation.row) > 0 ||
        weakRows.count(activation.row + 1) > 0 ||
        (activation.row > 0 && weakRows.count(activation.row - 1) > 0);
    if (touches_weak)
        return weakPath->onActivation(activation);
    return strongPath->onActivation(activation);
}

void
NonUniform::reset()
{
    strongPath->reset();
    weakPath->reset();
}

double
NonUniform::storageBits() const
{
    // Both paths plus the weak-row list (32-bit addresses).
    return strongPath->storageBits() + weakPath->storageBits() +
           static_cast<double>(weakRows.size()) * 32.0;
}

AreaCostReport
counterAreaSavings(double worst_hc_first, double weak_row_fraction,
                   double relaxed_multiplier, double window_activations,
                   double entry_bits)
{
    RHS_ASSERT(worst_hc_first > 0.0 && relaxed_multiplier >= 1.0);
    RHS_ASSERT(weak_row_fraction >= 0.0 && weak_row_fraction <= 1.0);

    AreaCostReport report;
    const double uniform_entries = window_activations / worst_hc_first;
    report.uniformBits = uniform_entries * entry_bits;

    // Main table configured at the relaxed threshold; weak rows use a
    // dedicated structure sized by their share of the activation
    // budget at the tight threshold.
    const double relaxed_entries =
        window_activations / (worst_hc_first * relaxed_multiplier);
    const double weak_entries =
        weak_row_fraction * window_activations / worst_hc_first;
    report.nonUniformBits =
        (relaxed_entries + weak_entries) * entry_bits;

    report.savingsPct =
        100.0 * (1.0 - report.nonUniformBits / report.uniformBits);
    return report;
}

} // namespace rhs::defense

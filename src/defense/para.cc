#include "defense/para.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/rng.hh"

namespace rhs::defense
{

Para::Para(double probability, std::uint64_t seed)
    : probability(probability), rngState(seed)
{
    RHS_ASSERT(probability > 0.0 && probability <= 1.0,
               "PARA probability must be in (0,1], got ", probability);
}

DefenseAction
Para::onActivation(const Activation &activation)
{
    DefenseAction action;
    util::Rng rng(rngState++);
    if (rng.uniform() < probability) {
        // Refresh one neighbour, chosen uniformly.
        const bool upper = rng.bernoulli(0.5);
        if (upper) {
            action.refreshRows.push_back(activation.row + 1);
        } else if (activation.row > 0) {
            action.refreshRows.push_back(activation.row - 1);
        }
    }
    return action;
}

void
Para::reset()
{
    // Stateless apart from the RNG stream; nothing to clear.
}

double
Para::probabilityFor(double hc_first, double failure)
{
    RHS_ASSERT(hc_first > 1.0 && failure > 0.0 && failure < 1.0);
    // Solve (1 - p/2)^hc <= failure for p.
    const double per_act = 1.0 - std::exp(std::log(failure) / hc_first);
    return std::min(1.0, 2.0 * per_act);
}

} // namespace rhs::defense

#include "defense/trr.hh"

#include <algorithm>

#include "util/logging.hh"

namespace rhs::defense
{

InDramTrr::InDramTrr(unsigned tracker_capacity,
                     unsigned sampling_interval)
    : capacity(tracker_capacity), samplingInterval(sampling_interval)
{
    RHS_ASSERT(capacity > 0, "TRR tracker needs capacity");
    RHS_ASSERT(samplingInterval > 0, "sampling interval must be >= 1");
}

DefenseAction
InDramTrr::onActivation(const Activation &activation)
{
    ++tick;
    if (tick % samplingInterval != 0)
        return {};

    // Track distinct rows; re-activation refreshes recency.
    auto it = std::find(tracker.begin(), tracker.end(), activation.row);
    if (it != tracker.end())
        tracker.erase(it);
    tracker.push_back(activation.row);
    while (tracker.size() > capacity)
        tracker.pop_front(); // Oldest candidate falls out: the
                             // TRRespass bypass window.
    return {};
}

std::vector<unsigned>
InDramTrr::onRefresh()
{
    std::vector<unsigned> victims;
    for (unsigned row : tracker) {
        if (row > 0)
            victims.push_back(row - 1);
        victims.push_back(row + 1);
    }
    tracker.clear();
    return victims;
}

void
InDramTrr::reset()
{
    tracker.clear();
    tick = 0;
}

double
InDramTrr::storageBits() const
{
    // Row address per tracker entry.
    return static_cast<double>(capacity) * 32.0;
}

} // namespace rhs::defense

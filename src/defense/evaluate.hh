/**
 * @file
 * Defense evaluation harness.
 *
 * Drives a double-sided RowHammer attack against a simulated DIMM with
 * a defense in the loop: the defense observes every activation, its
 * victim refreshes restore cell charge in the fault injector, and its
 * throttle decisions suppress (delay past the window) aggressor
 * activations.
 */

#ifndef RHS_DEFENSE_EVALUATE_HH
#define RHS_DEFENSE_EVALUATE_HH

#include <cstdint>

#include "defense/defense.hh"
#include "rhmodel/dimm.hh"
#include "rhmodel/pattern.hh"

namespace rhs::defense
{

/** Attack configuration for an evaluation run. */
struct AttackConfig
{
    unsigned bank = 0;
    unsigned victimPhysicalRow = 0;
    rhmodel::Conditions conditions{};
    std::uint64_t hammers = 300'000;
    unsigned trial = 0;

    //! Custom attack geometry (e.g. HammerAttack::manySided). When
    //! its aggressor list is empty, the classic double-sided attack
    //! on victimPhysicalRow is used.
    rhmodel::HammerAttack attack{};

    //! Issue a periodic refresh command every N activations (0 =
    //! refresh disabled, as in the paper's tests). In-DRAM TRR only
    //! acts on these.
    std::uint64_t refreshEveryActivations = 0;

    //! When true, each periodic refresh command restores the charge
    //! of ALL rows (a full auto-refresh pass), modelling the classic
    //! increase-the-refresh-rate mitigation. Works with or without a
    //! defense attached.
    bool refreshRestoresAllRows = false;
};

/** Outcome of running an attack against a defended module. */
struct EvaluationResult
{
    unsigned flips = 0;             //!< Bit flips the attack achieved.
    std::uint64_t activations = 0;  //!< Aggressor activations issued.
    std::uint64_t refreshes = 0;    //!< Victim refreshes the defense issued.
    std::uint64_t throttledActs = 0; //!< Activations suppressed.
    double storageBits = 0.0;        //!< Defense area proxy.

    /** Refresh bandwidth overhead: refreshes per activation. */
    double
    refreshOverhead() const
    {
        return activations == 0
                   ? 0.0
                   : static_cast<double>(refreshes) /
                         static_cast<double>(activations);
    }
};

/**
 * Run the attack with a defense attached.
 *
 * @param dimm Module under attack (its injector applies the damage).
 * @param defense Defense under evaluation (reset before the run).
 * @param pattern Data pattern written around the victim.
 * @param config Attack parameters.
 */
EvaluationResult evaluateDefense(rhmodel::SimulatedDimm &dimm,
                                 Defense &defense,
                                 const rhmodel::DataPattern &pattern,
                                 const AttackConfig &config);

/** Run the same attack with no defense (baseline flips). */
EvaluationResult evaluateUndefended(rhmodel::SimulatedDimm &dimm,
                                    const rhmodel::DataPattern &pattern,
                                    const AttackConfig &config);

} // namespace rhs::defense

#endif // RHS_DEFENSE_EVALUATE_HH

#include "defense/twice.hh"

#include <algorithm>

#include "util/logging.hh"

namespace rhs::defense
{

Twice::Twice(std::uint64_t threshold, std::uint64_t window_activations,
             std::uint64_t prune_interval)
    : threshold(threshold), window(window_activations),
      pruneInterval(prune_interval)
{
    RHS_ASSERT(threshold > 0 && window_activations >= threshold);
    RHS_ASSERT(prune_interval > 0);
}

DefenseAction
Twice::onActivation(const Activation &activation)
{
    DefenseAction action;
    ++tick;

    const std::uint64_t key =
        (static_cast<std::uint64_t>(activation.bank) << 32) |
        activation.row;
    auto &entry = table[key];
    if (entry.count == 0) {
        entry.firstSeenTick = tick;
        entry.trigger = threshold;
    }
    ++entry.count;
    highWater = std::max(highWater, table.size());

    if (entry.count >= entry.trigger) {
        if (activation.row > 0)
            action.refreshRows.push_back(activation.row - 1);
        action.refreshRows.push_back(activation.row + 1);
        entry.trigger += threshold;
    }

    if (tick % pruneInterval == 0)
        prune();
    return action;
}

void
Twice::prune()
{
    // A row whose observed activation *rate* is too low to reach the
    // threshold by the end of the window can be dropped safely.
    for (auto it = table.begin(); it != table.end();) {
        const auto &entry = it->second;
        const std::uint64_t age = tick - entry.firstSeenTick + 1;
        // Maximum count the row can reach by window end, assuming it
        // keeps its observed rate.
        const double rate = static_cast<double>(entry.count) /
                            static_cast<double>(age);
        const double projected =
            static_cast<double>(entry.count) +
            rate * static_cast<double>(window - std::min(window, tick));
        if (projected < static_cast<double>(threshold))
            it = table.erase(it);
        else
            ++it;
    }
}

void
Twice::reset()
{
    table.clear();
    tick = 0;
}

double
Twice::storageBits() const
{
    // Row address + count + lifetime per live entry (valid-bit style
    // accounting against the high-water mark).
    return static_cast<double>(std::max(highWater, table.size())) * 96.0;
}

} // namespace rhs::defense

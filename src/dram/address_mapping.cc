#include "dram/address_mapping.hh"

#include "util/logging.hh"

namespace rhs::dram
{

namespace
{

class IdentityMapping : public RowMapping
{
  public:
    unsigned toPhysical(unsigned logical_row) const override
    {
        return logical_row;
    }

    unsigned toLogical(unsigned physical_row) const override
    {
        return physical_row;
    }

    std::string name() const override { return "identity"; }
};

class MsbPairMapping : public RowMapping
{
  public:
    unsigned
    toPhysical(unsigned logical_row) const override
    {
        // Reverse the order of rows whose bit 3 is set within each
        // 16-row block: logical ...1abc maps to physical ...1(~abc).
        if (logical_row & 0x8)
            return logical_row ^ 0x7;
        return logical_row;
    }

    unsigned
    toLogical(unsigned physical_row) const override
    {
        // The transform is an involution.
        return toPhysical(physical_row);
    }

    std::string name() const override { return "msb-pair"; }
};

class XorSwizzleMapping : public RowMapping
{
  public:
    explicit XorSwizzleMapping(unsigned mask) : mask(mask)
    {
        RHS_ASSERT(mask < 8, "XOR mask must only cover bits 0..2");
    }

    unsigned
    toPhysical(unsigned logical_row) const override
    {
        return logical_row ^ ((logical_row >> 3) & mask);
    }

    unsigned
    toLogical(unsigned physical_row) const override
    {
        // Bits >= 3 are unchanged, so the same shift recovers the
        // original XOR pad: the transform is an involution.
        return physical_row ^ ((physical_row >> 3) & mask);
    }

    std::string
    name() const override
    {
        return "xor-swizzle(" + std::to_string(mask) + ")";
    }

  private:
    unsigned mask;
};

} // namespace

std::unique_ptr<RowMapping>
makeIdentityMapping()
{
    return std::make_unique<IdentityMapping>();
}

std::unique_ptr<RowMapping>
makeMsbPairMapping()
{
    return std::make_unique<MsbPairMapping>();
}

std::unique_ptr<RowMapping>
makeXorSwizzleMapping(unsigned mask)
{
    return std::make_unique<XorSwizzleMapping>(mask);
}

std::unique_ptr<RowMapping>
makeMapping(const std::string &scheme)
{
    if (scheme == "identity")
        return makeIdentityMapping();
    if (scheme == "msb-pair")
        return makeMsbPairMapping();
    if (scheme == "xor")
        return makeXorSwizzleMapping();
    RHS_FATAL("unknown row mapping scheme: ", scheme);
}

} // namespace rhs::dram

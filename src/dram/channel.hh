/**
 * @file
 * DRAM channel: multiple ranks behind one shared command/I-O bus.
 *
 * Completes the Fig. 1 hierarchy: "The memory controller can interface
 * with multiple DRAM ranks by time-multiplexing the channel's I/O bus
 * between the ranks. Because the I/O bus is shared, the memory
 * controller serializes accesses to different ranks in the same
 * channel" (§2.1). The channel enforces that serialization: two
 * commands — to any rank — cannot occupy the same bus cycle.
 */

#ifndef RHS_DRAM_CHANNEL_HH
#define RHS_DRAM_CHANNEL_HH

#include <memory>
#include <string>
#include <vector>

#include "dram/module.hh"

namespace rhs::dram
{

/** One channel with its ranks. */
class Channel
{
  public:
    /** @param label Channel name for diagnostics. */
    explicit Channel(std::string label) : channelLabel(std::move(label))
    {
    }

    const std::string &label() const { return channelLabel; }

    /**
     * Attach a rank (a module operating in lock-step).
     *
     * @return The new rank's index.
     */
    unsigned addRank(std::unique_ptr<Module> module);

    unsigned rankCount() const
    {
        return static_cast<unsigned>(ranks.size());
    }

    Module &rank(unsigned index);
    const Module &rank(unsigned index) const;

    /**
     * Issue a command to a rank over the shared bus.
     *
     * @throws TimingError when the bus cycle is already occupied by a
     *         command to any rank (the serialization constraint), or
     *         when the target rank's own FSM rejects the command.
     */
    void issue(unsigned rank_index, const Command &command);

    /** Read a column of a rank's open row through the shared bus. */
    std::vector<std::uint8_t> readColumn(unsigned rank_index,
                                         unsigned bank, unsigned column,
                                         Cycles cycle);

    /** Latest bus cycle consumed (commands must come after it). */
    Cycles lastBusCycle() const { return lastCycle; }

    /** Total commands issued on the bus. */
    std::uint64_t busCommands() const { return commands; }

  private:
    void claimBus(Cycles cycle);

    std::string channelLabel;
    std::vector<std::unique_ptr<Module>> ranks;
    Cycles lastCycle = 0;
    bool busEverUsed = false;
    std::uint64_t commands = 0;
};

} // namespace rhs::dram

#endif // RHS_DRAM_CHANNEL_HH

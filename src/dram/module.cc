#include "dram/module.hh"

#include <algorithm>

#include "util/logging.hh"

namespace rhs::dram
{

std::string
to_string(CommandType type)
{
    switch (type) {
      case CommandType::Act: return "ACT";
      case CommandType::Pre: return "PRE";
      case CommandType::PreA: return "PREA";
      case CommandType::Rd: return "RD";
      case CommandType::Wr: return "WR";
      case CommandType::Ref: return "REF";
      case CommandType::Nop: return "NOP";
    }
    return "?";
}

Module::Module(ModuleInfo info, Geometry geometry, TimingParams timing,
               std::unique_ptr<RowMapping> mapping)
    : moduleInfo(std::move(info)), geom(geometry), timingParams(timing),
      mapping(std::move(mapping))
{
    RHS_ASSERT(this->mapping, "module requires a row mapping");
    banks.reserve(geom.banks);
    for (unsigned b = 0; b < geom.banks; ++b)
        banks.emplace_back(timingParams, b);
    chips.reserve(moduleInfo.chips);
    for (unsigned c = 0; c < moduleInfo.chips; ++c)
        chips.emplace_back(geom, c);
}

void
Module::addListener(ActivationListener *listener)
{
    RHS_ASSERT(listener != nullptr);
    listeners.push_back(listener);
}

void
Module::notify(const ActivationRecord &record)
{
    for (auto *listener : listeners)
        listener->onActivation(record);
}

void
Module::issue(const Command &command)
{
    switch (command.type) {
      case CommandType::Act: {
        RHS_ASSERT(command.bank < banks.size());
        const unsigned phys = mapping->toPhysical(command.row);
        RHS_ASSERT(phys < geom.rowsPerBank(), "physical row ", phys,
                   " out of range");
        checkRankActConstraints(command.cycle);
        banks[command.bank].activate(phys, command.cycle);
        recentActs.push_back(command.cycle);
        if (recentActs.size() > 4)
            recentActs.erase(recentActs.begin());
        break;
      }
      case CommandType::Pre: {
        RHS_ASSERT(command.bank < banks.size());
        notify(banks[command.bank].precharge(command.cycle));
        break;
      }
      case CommandType::PreA: {
        for (auto &bank : banks) {
            if (bank.isActive())
                notify(bank.precharge(command.cycle));
        }
        break;
      }
      case CommandType::Rd:
        RHS_ASSERT(command.bank < banks.size());
        banks[command.bank].read(command.column, command.cycle);
        break;
      case CommandType::Wr:
        RHS_ASSERT(command.bank < banks.size());
        banks[command.bank].write(command.column, command.cycle);
        break;
      case CommandType::Ref:
        // Refresh is intentionally disabled during RowHammer tests
        // (§4.2); accepting it here would silently heal victims.
        throw TimingError("REF issued during a RowHammer test");
      case CommandType::Nop:
        break;
    }
}

std::vector<std::uint8_t>
Module::readColumn(unsigned bank, unsigned column, Cycles cycle)
{
    RHS_ASSERT(bank < banks.size());
    banks[bank].read(column, cycle);
    const unsigned row = banks[bank].openRow();
    std::vector<std::uint8_t> bytes(chips.size());
    for (std::size_t c = 0; c < chips.size(); ++c)
        bytes[c] = chips[c].readByte(bank, row, column);
    return bytes;
}

void
Module::writeColumn(unsigned bank, unsigned column,
                    const std::vector<std::uint8_t> &bytes, Cycles cycle)
{
    RHS_ASSERT(bank < banks.size());
    RHS_ASSERT(bytes.size() == chips.size(), "column write width mismatch");
    banks[bank].write(column, cycle);
    const unsigned row = banks[bank].openRow();
    for (std::size_t c = 0; c < chips.size(); ++c)
        chips[c].writeByte(bank, row, column, bytes[c]);
}

void
Module::storeRowDirect(unsigned bank, unsigned logical_row,
                       const std::vector<std::vector<std::uint8_t>> &data)
{
    RHS_ASSERT(data.size() == chips.size(), "row image count mismatch");
    const unsigned phys = mapping->toPhysical(logical_row);
    for (std::size_t c = 0; c < chips.size(); ++c)
        chips[c].writeRow(bank, phys, data[c]);
}

std::vector<std::vector<std::uint8_t>>
Module::loadRowDirect(unsigned bank, unsigned logical_row) const
{
    const unsigned phys = mapping->toPhysical(logical_row);
    std::vector<std::vector<std::uint8_t>> data;
    data.reserve(chips.size());
    for (const auto &chip : chips)
        data.push_back(chip.readRow(bank, phys));
    return data;
}

void
Module::flipBit(const CellLocation &cell)
{
    RHS_ASSERT(cell.chip < chips.size(), "chip ", cell.chip,
               " out of range");
    chips[cell.chip].flipBit(cell.bank, cell.row, cell.column, cell.bit);
}

Chip &
Module::chip(unsigned index)
{
    RHS_ASSERT(index < chips.size());
    return chips[index];
}

const Chip &
Module::chip(unsigned index) const
{
    RHS_ASSERT(index < chips.size());
    return chips[index];
}

const Bank &
Module::bank(unsigned index) const
{
    RHS_ASSERT(index < banks.size());
    return banks[index];
}

std::uint64_t
Module::totalActivations() const
{
    std::uint64_t total = 0;
    for (const auto &bank : banks)
        total += bank.activationCount();
    return total;
}

void
Module::powerCycle()
{
    for (auto &chip : chips)
        chip.clear();
    resetTiming();
}

void
Module::resetTiming()
{
    banks.clear();
    for (unsigned b = 0; b < geom.banks; ++b)
        banks.emplace_back(timingParams, b);
    recentActs.clear();
}

void
Module::checkRankActConstraints(Cycles cycle) const
{
    if (!recentActs.empty()) {
        const Cycles last = recentActs.back();
        if (cycle < last ||
            timingParams.toNs(cycle - last) + 1e-9 < timingParams.tRRD) {
            throw TimingError("rank: ACT violates tRRD (previous ACT "
                              "at cycle " + std::to_string(last) + ")");
        }
    }
    if (recentActs.size() == 4) {
        const Cycles oldest = recentActs.front();
        if (timingParams.toNs(cycle - oldest) + 1e-9 <
            timingParams.tFAW) {
            throw TimingError(
                "rank: fifth ACT within tFAW of the activation at "
                "cycle " + std::to_string(oldest));
        }
    }
}

Cycles
Module::earliestRankAct(Cycles lower_bound) const
{
    Cycles earliest = lower_bound;
    if (!recentActs.empty()) {
        earliest = std::max(
            earliest,
            recentActs.back() + timingParams.toCycles(timingParams.tRRD));
    }
    if (recentActs.size() == 4) {
        earliest = std::max(
            earliest,
            recentActs.front() +
                timingParams.toCycles(timingParams.tFAW));
    }
    return earliest;
}

} // namespace rhs::dram

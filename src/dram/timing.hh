/**
 * @file
 * DRAM timing parameters (JEDEC-style) in nanoseconds and cycles.
 *
 * The characterization relies on two key parameters (§2.2): tRAS, the
 * minimum time a row stays active before precharge, and tRP, the
 * minimum precharge-to-activate delay. The aggressor-row active-time
 * analysis (§6) stretches the effective on-time beyond tRAS and the
 * off-time beyond tRP with NOPs.
 */

#ifndef RHS_DRAM_TIMING_HH
#define RHS_DRAM_TIMING_HH

#include <cstdint>

#include "dram/organization.hh"

namespace rhs::dram
{

/** Nanoseconds as a double; the SoftMC FPGA clock quantizes them. */
using Ns = double;

/** Host clock cycles (SoftMC granularity: 1.25 ns DDR4, 2.5 ns DDR3). */
using Cycles = std::uint64_t;

/** Timing parameter set for one speed bin. */
struct TimingParams
{
    Standard standard = Standard::DDR4;
    Ns tCK = 0.833;   //!< Bus clock period (DDR4-2400).
    Ns clock = 1.25;  //!< SoftMC command-issue granularity.
    Ns tRAS = 34.5;   //!< ACT to PRE minimum (in paper: 34.5 ns base).
    Ns tRP = 16.5;    //!< PRE to ACT minimum (paper baseline: 16.5 ns).
    Ns tRCD = 14.16;  //!< ACT to first RD/WR.
    Ns tRTP = 7.5;    //!< RD to PRE.
    Ns tWR = 15.0;    //!< End of WR burst to PRE.
    Ns tCCD = 5.0;    //!< Column-to-column delay.
    Ns tRRD = 5.0;    //!< ACT-to-ACT delay across banks of a rank.
    Ns tFAW = 25.0;   //!< Four-activation window per rank.
    Ns tRFC = 350.0;  //!< REF to next command.
    Ns tREFI = 7800.0; //!< Nominal refresh interval (disabled in tests).
    Ns tRetention = 64e6; //!< Refresh window the tests must fit in (64 ms).

    /** Minimum ACT-to-ACT interval for a double-sided hammer pair. */
    Ns hammerPeriod() const { return tRAS + tRP; }

    /** Convert a duration to host cycles, rounding up. */
    Cycles
    toCycles(Ns ns) const
    {
        return static_cast<Cycles>((ns + clock - 1e-9) / clock);
    }

    /** Convert host cycles back to nanoseconds. */
    Ns toNs(Cycles cycles) const
    {
        return static_cast<Ns>(cycles) * clock;
    }
};

/** DDR4-2400 timings used for the paper's DDR4 modules (Table 4). */
TimingParams ddr4_2400();

/** DDR3-1600 timings used for the paper's DDR3 SODIMMs (Table 4). */
TimingParams ddr3_1600();

} // namespace rhs::dram

#endif // RHS_DRAM_TIMING_HH

/**
 * @file
 * DRAM geometry and address types.
 *
 * Models the hierarchy of Fig. 1 in the paper: a module contains chips
 * operating in lock-step; a chip contains banks; a bank is a 2-D array
 * of rows and columns partitioned into subarrays with local row buffers.
 */

#ifndef RHS_DRAM_ORGANIZATION_HH
#define RHS_DRAM_ORGANIZATION_HH

#include <cstdint>
#include <string>

namespace rhs::dram
{

/** DDR standard of a module; selects timing presets and granularity. */
enum class Standard { DDR3, DDR4 };

/** Human-readable name of a standard. */
std::string to_string(Standard standard);

/** Geometry of one DRAM chip (all chips in a module are identical). */
struct Geometry
{
    unsigned banks = 8;            //!< Banks per chip.
    unsigned subarraysPerBank = 16; //!< Subarrays per bank.
    unsigned rowsPerSubarray = 512; //!< Rows per subarray.
    unsigned columnsPerRow = 1024; //!< Column addresses per row (per chip).
    unsigned bitsPerColumn = 8;    //!< Device data width (x8 => 8).

    /** Rows per bank (subarrays * rows per subarray). */
    unsigned rowsPerBank() const { return subarraysPerBank * rowsPerSubarray; }

    /** Bits stored in one row of one chip. */
    unsigned bitsPerRow() const { return columnsPerRow * bitsPerColumn; }

    /** Bytes stored in one row of one chip. */
    unsigned bytesPerRow() const { return bitsPerRow() / 8; }

    /** Subarray index containing a row. @pre row < rowsPerBank() */
    unsigned subarrayOf(unsigned row) const { return row / rowsPerSubarray; }

    /** Row index within its subarray. */
    unsigned rowInSubarray(unsigned row) const
    {
        return row % rowsPerSubarray;
    }
};

/** A (bank, row) pair: the granularity of activations. */
struct RowAddress
{
    unsigned bank = 0;
    unsigned row = 0;

    bool operator==(const RowAddress &other) const = default;
};

/** A full (bank, row, column) address for column accesses. */
struct ColumnAddress
{
    unsigned bank = 0;
    unsigned row = 0;
    unsigned column = 0;

    bool operator==(const ColumnAddress &other) const = default;
};

/**
 * Identifies one bit cell inside one chip of a module, in *physical*
 * row coordinates. The fault model and the spatial analyses operate
 * on these.
 */
struct CellLocation
{
    unsigned chip = 0;
    unsigned bank = 0;
    unsigned row = 0;    //!< Physical row index.
    unsigned column = 0; //!< Column address within the row.
    unsigned bit = 0;    //!< Bit index within the column word.

    bool operator==(const CellLocation &other) const = default;
};

} // namespace rhs::dram

#endif // RHS_DRAM_ORGANIZATION_HH

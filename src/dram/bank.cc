#include "dram/bank.hh"

#include <string>

#include "util/logging.hh"

namespace rhs::dram
{

namespace
{

[[noreturn]] void
violation(unsigned bank, const std::string &what)
{
    throw TimingError("bank " + std::to_string(bank) + ": " + what);
}

} // namespace

Bank::Bank(const TimingParams &timing, unsigned index)
    : timing(timing), index(index)
{
}

void
Bank::activate(unsigned physical_row, Cycles cycle)
{
    if (active)
        violation(index, "ACT while row " + std::to_string(currentRow) +
                             " is open");
    if (everPrecharged) {
        const Ns gap = timing.toNs(cycle - lastPreCycle);
        if (cycle < lastPreCycle || gap + 1e-9 < timing.tRP)
            violation(index, "ACT " + std::to_string(gap) +
                                 " ns after PRE violates tRP");
    }

    active = true;
    currentRow = physical_row;
    lastActCycle = cycle;
    hasColumnAccess = false;
    columnReadyCycle = cycle;
    nextColumnCycle = cycle + timing.toCycles(timing.tRCD);
    ++activations;
}

ActivationRecord
Bank::precharge(Cycles cycle)
{
    if (!active)
        violation(index, "PRE while idle");
    const Ns on_time = timing.toNs(cycle - lastActCycle);
    if (cycle < lastActCycle || on_time + 1e-9 < timing.tRAS)
        violation(index, "PRE " + std::to_string(on_time) +
                             " ns after ACT violates tRAS");
    if (hasColumnAccess && cycle < columnReadyCycle)
        violation(index, "PRE before column access completed "
                         "(tRTP/tWR)");

    ActivationRecord record;
    record.bank = index;
    record.physicalRow = currentRow;
    record.onTime = on_time;
    // Off-time is the precharged gap that *preceded* this activation.
    // The first activation after reset has no measured gap; report the
    // nominal tRP the device would have been idle for.
    record.offTime = everPrecharged
                         ? timing.toNs(lastActCycle - lastPreCycle)
                         : timing.tRP;

    active = false;
    everPrecharged = true;
    lastPreCycle = cycle;
    return record;
}

void
Bank::checkColumnAccess(const char *what, Cycles cycle) const
{
    if (!active)
        violation(index, std::string(what) + " while idle");
    if (cycle < nextColumnCycle)
        violation(index, std::string(what) +
                             " before tRCD/tCCD elapsed");
}

void
Bank::read(unsigned column, Cycles cycle)
{
    (void)column;
    checkColumnAccess("RD", cycle);
    hasColumnAccess = true;
    const Cycles done = cycle + timing.toCycles(timing.tRTP);
    if (done > columnReadyCycle)
        columnReadyCycle = done;
    nextColumnCycle = cycle + timing.toCycles(timing.tCCD);
}

void
Bank::write(unsigned column, Cycles cycle)
{
    (void)column;
    checkColumnAccess("WR", cycle);
    hasColumnAccess = true;
    const Cycles done = cycle + timing.toCycles(timing.tWR);
    if (done > columnReadyCycle)
        columnReadyCycle = done;
    nextColumnCycle = cycle + timing.toCycles(timing.tCCD);
}

unsigned
Bank::openRow() const
{
    RHS_ASSERT(active, "openRow() on an idle bank");
    return currentRow;
}

} // namespace rhs::dram

/**
 * @file
 * Logical-to-physical DRAM row address remapping.
 *
 * DRAM manufacturers translate memory-controller-visible row addresses
 * into internal physical row addresses (§4.2, "Logical-to-Physical Row
 * Mapping"). A RowHammer test must hammer the rows that are *physically*
 * adjacent to a victim, so the characterization toolkit reverse-engineers
 * this mapping (core::RowMappingRe). The device model implements several
 * mapping schemes observed in real chips.
 */

#ifndef RHS_DRAM_ADDRESS_MAPPING_HH
#define RHS_DRAM_ADDRESS_MAPPING_HH

#include <memory>
#include <string>

namespace rhs::dram
{

/** Abstract bijection between logical and physical row addresses. */
class RowMapping
{
  public:
    virtual ~RowMapping() = default;

    /** Physical row stored at a logical address. */
    virtual unsigned toPhysical(unsigned logical_row) const = 0;

    /** Logical address exposing a physical row. */
    virtual unsigned toLogical(unsigned physical_row) const = 0;

    /** Scheme name for reports. */
    virtual std::string name() const = 0;
};

/** Identity mapping: physical == logical. */
std::unique_ptr<RowMapping> makeIdentityMapping();

/**
 * "MSB-pair" remapping seen in some DDR3 designs: within each block of
 * eight rows, the upper half order is reversed when bit 3 of the row
 * address is set (rows ...8-...F map to ...F-...8). Adjacent physical
 * rows are then non-consecutive logical addresses across the fold.
 */
std::unique_ptr<RowMapping> makeMsbPairMapping();

/**
 * XOR-swizzle remapping typical of newer designs: the low address bits
 * are XORed with a function of higher bits, physical = logical ^
 * ((logical >> 3) & mask). Self-inverse for any mask < 8.
 *
 * @param mask Low-bit XOR mask; must be < 8.
 */
std::unique_ptr<RowMapping> makeXorSwizzleMapping(unsigned mask = 0x3);

/** Construct a mapping scheme by name ("identity", "msb-pair", "xor"). */
std::unique_ptr<RowMapping> makeMapping(const std::string &scheme);

} // namespace rhs::dram

#endif // RHS_DRAM_ADDRESS_MAPPING_HH

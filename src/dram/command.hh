/**
 * @file
 * DDR command stream types.
 */

#ifndef RHS_DRAM_COMMAND_HH
#define RHS_DRAM_COMMAND_HH

#include <cstdint>
#include <string>

#include "dram/timing.hh"

namespace rhs::dram
{

/** DDR commands the device model understands. */
enum class CommandType : std::uint8_t
{
    Act,  //!< Activate a row in a bank.
    Pre,  //!< Precharge one bank.
    PreA, //!< Precharge all banks.
    Rd,   //!< Read a column of the open row.
    Wr,   //!< Write a column of the open row.
    Ref,  //!< Refresh (never issued during RowHammer tests, §4.2).
    Nop,  //!< Idle cycle; used to stretch on/off times.
};

/** Human-readable command mnemonic. */
std::string to_string(CommandType type);

/** One timed command on the bus of a module. */
struct Command
{
    CommandType type = CommandType::Nop;
    unsigned bank = 0;
    unsigned row = 0;    //!< Logical row address (ACT only).
    unsigned column = 0; //!< Column address (RD/WR only).
    Cycles cycle = 0;    //!< Issue time in host cycles.
};

/**
 * Record emitted when a row's activation window closes (on PRE):
 * the fault model consumes these to apply RowHammer disturbance.
 * All times are in nanoseconds; the row is a *physical* row index.
 */
struct ActivationRecord
{
    unsigned bank = 0;
    unsigned physicalRow = 0;
    Ns onTime = 0.0;  //!< ACT-to-PRE duration of this activation.
    Ns offTime = 0.0; //!< Preceding PRE-to-ACT gap in this bank.
};

} // namespace rhs::dram

#endif // RHS_DRAM_COMMAND_HH

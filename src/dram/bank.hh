/**
 * @file
 * Per-bank DRAM state machine with JEDEC timing validation.
 *
 * The bank tracks the open row and checks that the command stream obeys
 * tRP, tRAS, tRCD, tRTP, tWR and tCCD. On every precharge it produces an
 * ActivationRecord carrying the *measured* on-time and off-time of the
 * just-closed activation — the quantities the paper's aggressor-row
 * active-time analysis (§6) varies.
 */

#ifndef RHS_DRAM_BANK_HH
#define RHS_DRAM_BANK_HH

#include <optional>
#include <stdexcept>

#include "dram/command.hh"
#include "dram/timing.hh"

namespace rhs::dram
{

/** Thrown when a command violates a timing parameter or FSM state. */
class TimingError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** One DRAM bank: open-row state plus timing bookkeeping. */
class Bank
{
  public:
    /**
     * @param timing Timing parameter set shared by the module.
     * @param index Bank index (for diagnostics).
     */
    Bank(const TimingParams &timing, unsigned index);

    /**
     * Activate a physical row.
     *
     * @param physical_row Row to open.
     * @param cycle Issue time.
     * @throws TimingError when the bank is already active or tRP/tRC
     *         has not elapsed since the last precharge/activate.
     */
    void activate(unsigned physical_row, Cycles cycle);

    /**
     * Precharge the bank.
     *
     * @param cycle Issue time.
     * @return The activation record of the closed row.
     * @throws TimingError when the bank is idle, tRAS has not elapsed,
     *         or a column access has not completed (tRTP / tWR).
     */
    ActivationRecord precharge(Cycles cycle);

    /**
     * Read a column of the open row.
     * @throws TimingError when idle, before tRCD, or within tCCD of the
     *         previous column access.
     */
    void read(unsigned column, Cycles cycle);

    /** Write a column of the open row; same timing rules as read. */
    void write(unsigned column, Cycles cycle);

    /** True when a row is open. */
    bool isActive() const { return active; }

    /** Open physical row. @pre isActive() */
    unsigned openRow() const;

    /** Total activations seen by this bank. */
    std::uint64_t activationCount() const { return activations; }

  private:
    void checkColumnAccess(const char *what, Cycles cycle) const;

    const TimingParams &timing;
    unsigned index;

    bool active = false;
    unsigned currentRow = 0;
    std::uint64_t activations = 0;

    bool everPrecharged = false;
    Cycles lastActCycle = 0;
    Cycles lastPreCycle = 0;
    //! Latest cycle at which an in-flight column access allows PRE.
    Cycles columnReadyCycle = 0;
    //! Earliest cycle for the next column access (tCCD).
    Cycles nextColumnCycle = 0;
    bool hasColumnAccess = false;
};

} // namespace rhs::dram

#endif // RHS_DRAM_BANK_HH

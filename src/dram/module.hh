/**
 * @file
 * A DRAM module: lock-step chips behind a shared command bus.
 *
 * The module validates the command stream against one bank FSM per bank
 * (all chips see the same commands), stores data per chip, translates
 * logical to physical row addresses, and publishes ActivationRecords to
 * registered listeners (the RowHammer fault injector subscribes here).
 */

#ifndef RHS_DRAM_MODULE_HH
#define RHS_DRAM_MODULE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dram/address_mapping.hh"
#include "dram/bank.hh"
#include "dram/chip.hh"
#include "dram/command.hh"
#include "dram/organization.hh"
#include "dram/timing.hh"

namespace rhs::dram
{

/** Observer of row activation windows (fed on every PRE). */
class ActivationListener
{
  public:
    virtual ~ActivationListener() = default;

    /** Called when an activation window closes. */
    virtual void onActivation(const ActivationRecord &record) = 0;
};

/** Static description of a module for inventory reports (Table 4). */
struct ModuleInfo
{
    std::string label;        //!< e.g. "A0".
    std::string manufacturer; //!< e.g. "Mfr. A (Micron)".
    Standard standard = Standard::DDR4;
    unsigned chips = 8;       //!< Chips per module.
    std::string density;      //!< e.g. "8Gb".
    std::string dieRevision;  //!< e.g. "B".
    std::string organization; //!< e.g. "x8".
    std::uint64_t serial = 0; //!< Seeds the fault model.
};

/** One DRAM module under test. */
class Module
{
  public:
    /**
     * @param info Inventory identity (serial seeds the fault model).
     * @param geometry Per-chip geometry.
     * @param timing Timing parameter set.
     * @param mapping Logical-to-physical row mapping (owned).
     */
    Module(ModuleInfo info, Geometry geometry, TimingParams timing,
           std::unique_ptr<RowMapping> mapping);

    const ModuleInfo &info() const { return moduleInfo; }
    const Geometry &geometry() const { return geom; }
    const TimingParams &timing() const { return timingParams; }
    const RowMapping &rowMapping() const { return *mapping; }
    unsigned chipCount() const { return static_cast<unsigned>(chips.size()); }

    /** Register an activation observer (not owned). */
    void addListener(ActivationListener *listener);

    /**
     * Issue one command on the bus.
     * @throws TimingError on per-bank FSM/timing violations or on the
     *         rank-level activation constraints (tRRD between ACTs to
     *         any banks, tFAW limiting four activations per window).
     */
    void issue(const Command &command);

    /**
     * Earliest cycle (>= lower_bound) at which the rank-level
     * activation constraints (tRRD/tFAW) admit a new ACT. Schedulers
     * use this to stay violation-free; the per-bank constraints are
     * separate.
     */
    Cycles earliestRankAct(Cycles lower_bound) const;

    /**
     * Read one column word from every chip (the open row supplies the
     * data). Timing-checked like issue().
     *
     * @return One byte per chip.
     */
    std::vector<std::uint8_t> readColumn(unsigned bank, unsigned column,
                                         Cycles cycle);

    /** Write the same column of the open row on every chip. */
    void writeColumn(unsigned bank, unsigned column,
                     const std::vector<std::uint8_t> &bytes, Cycles cycle);

    /**
     * Host-DMA style bulk write of a full *logical* row across chips,
     * bypassing bus timing (models SoftMC's buffered writes used to
     * install data patterns before a test).
     *
     * @param data Per-chip row images; data.size() == chipCount().
     */
    void storeRowDirect(unsigned bank, unsigned logical_row,
                        const std::vector<std::vector<std::uint8_t>> &data);

    /** Bulk read of a full logical row across chips. */
    std::vector<std::vector<std::uint8_t>>
    loadRowDirect(unsigned bank, unsigned logical_row) const;

    /** Fault-injection access point: flip one stored bit. */
    void flipBit(const CellLocation &cell);

    /** Direct chip access (tests and analyses). */
    Chip &chip(unsigned index);
    const Chip &chip(unsigned index) const;

    /** Bank FSM access (tests). */
    const Bank &bank(unsigned index) const;

    /** Total activations across all banks. */
    std::uint64_t totalActivations() const;

    /** Clear all stored data and reset bank FSMs (power cycle). */
    void powerCycle();

    /**
     * Reset bank FSM clocks without touching stored data. Call when a
     * new host session restarts its cycle counter from zero (the bank
     * timing checks would otherwise see time run backwards).
     */
    void resetTiming();

  private:
    void notify(const ActivationRecord &record);

    void checkRankActConstraints(Cycles cycle) const;

    ModuleInfo moduleInfo;
    Geometry geom;
    TimingParams timingParams;
    std::unique_ptr<RowMapping> mapping;
    std::vector<Bank> banks;
    std::vector<Chip> chips;
    std::vector<ActivationListener *> listeners;
    //! Issue cycles of the most recent activations (rank-level
    //! tRRD/tFAW bookkeeping; at most 4 entries).
    std::vector<Cycles> recentActs;
};

} // namespace rhs::dram

#endif // RHS_DRAM_MODULE_HH

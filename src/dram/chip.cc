#include "dram/chip.hh"

#include "util/logging.hh"

namespace rhs::dram
{

Chip::Chip(const Geometry &geometry, unsigned index)
    : geometry(geometry), index(index)
{
}

std::uint64_t
Chip::key(unsigned bank, unsigned physical_row) const
{
    return (static_cast<std::uint64_t>(bank) << 32) | physical_row;
}

void
Chip::checkAddress(unsigned bank, unsigned physical_row,
                   unsigned column) const
{
    RHS_ASSERT(bank < geometry.banks, "bank ", bank, " out of range");
    RHS_ASSERT(physical_row < geometry.rowsPerBank(), "row ",
               physical_row, " out of range");
    RHS_ASSERT(column < geometry.columnsPerRow, "column ", column,
               " out of range");
}

std::vector<std::uint8_t> &
Chip::materialize(unsigned bank, unsigned physical_row)
{
    auto [it, inserted] = rows.try_emplace(
        key(bank, physical_row),
        std::vector<std::uint8_t>(geometry.bytesPerRow(), 0));
    return it->second;
}

void
Chip::writeRow(unsigned bank, unsigned physical_row,
               const std::vector<std::uint8_t> &data)
{
    checkAddress(bank, physical_row, 0);
    RHS_ASSERT(data.size() == geometry.bytesPerRow(),
               "row write size mismatch: ", data.size());
    rows[key(bank, physical_row)] = data;
}

std::vector<std::uint8_t>
Chip::readRow(unsigned bank, unsigned physical_row) const
{
    checkAddress(bank, physical_row, 0);
    auto it = rows.find(key(bank, physical_row));
    if (it == rows.end())
        return std::vector<std::uint8_t>(geometry.bytesPerRow(), 0);
    return it->second;
}

void
Chip::writeByte(unsigned bank, unsigned physical_row, unsigned column,
                std::uint8_t value)
{
    checkAddress(bank, physical_row, column);
    materialize(bank, physical_row)[column] = value;
}

std::uint8_t
Chip::readByte(unsigned bank, unsigned physical_row,
               unsigned column) const
{
    checkAddress(bank, physical_row, column);
    auto it = rows.find(key(bank, physical_row));
    return it == rows.end() ? 0 : it->second[column];
}

void
Chip::flipBit(unsigned bank, unsigned physical_row, unsigned column,
              unsigned bit)
{
    checkAddress(bank, physical_row, column);
    RHS_ASSERT(bit < geometry.bitsPerColumn, "bit ", bit, " out of range");
    materialize(bank, physical_row)[column] ^=
        static_cast<std::uint8_t>(1u << bit);
}

bool
Chip::hasRow(unsigned bank, unsigned physical_row) const
{
    return rows.count(key(bank, physical_row)) > 0;
}

void
Chip::clear()
{
    rows.clear();
}

} // namespace rhs::dram

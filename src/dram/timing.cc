#include "dram/timing.hh"

namespace rhs::dram
{

std::string
to_string(Standard standard)
{
    return standard == Standard::DDR4 ? "DDR4" : "DDR3";
}

TimingParams
ddr4_2400()
{
    TimingParams t;
    t.standard = Standard::DDR4;
    t.tCK = 0.833;
    t.clock = 1.25; // SoftMC DDR4 granularity (§4.1).
    t.tRAS = 34.5;  // Paper's baseline aggressor on-time (§6).
    t.tRP = 16.5;   // Paper's baseline aggressor off-time (§6.2).
    t.tRCD = 14.16;
    t.tRTP = 7.5;
    t.tWR = 15.0;
    t.tCCD = 5.0;
    t.tRRD = 5.0;
    t.tFAW = 25.0;
    t.tRFC = 350.0;
    t.tREFI = 7800.0;
    return t;
}

TimingParams
ddr3_1600()
{
    TimingParams t;
    t.standard = Standard::DDR3;
    t.tCK = 1.25;
    t.clock = 2.5; // SoftMC DDR3 granularity (§4.1).
    t.tRAS = 35.0;
    t.tRP = 13.75;
    t.tRCD = 13.75;
    t.tRTP = 7.5;
    t.tWR = 15.0;
    t.tCCD = 5.0;
    t.tRRD = 6.0;
    t.tFAW = 30.0;
    t.tRFC = 260.0;
    t.tREFI = 7800.0;
    return t;
}

} // namespace rhs::dram

#include "dram/channel.hh"

#include "util/logging.hh"

namespace rhs::dram
{

unsigned
Channel::addRank(std::unique_ptr<Module> module)
{
    RHS_ASSERT(module, "null rank");
    ranks.push_back(std::move(module));
    return static_cast<unsigned>(ranks.size() - 1);
}

Module &
Channel::rank(unsigned index)
{
    RHS_ASSERT(index < ranks.size(), "rank ", index, " out of range");
    return *ranks[index];
}

const Module &
Channel::rank(unsigned index) const
{
    RHS_ASSERT(index < ranks.size(), "rank ", index, " out of range");
    return *ranks[index];
}

void
Channel::claimBus(Cycles cycle)
{
    if (busEverUsed && cycle <= lastCycle) {
        throw TimingError(
            "channel " + channelLabel + ": bus cycle " +
            std::to_string(cycle) +
            " conflicts with a command at cycle " +
            std::to_string(lastCycle) +
            " (ranks share the command bus)");
    }
    lastCycle = cycle;
    busEverUsed = true;
    ++commands;
}

void
Channel::issue(unsigned rank_index, const Command &command)
{
    RHS_ASSERT(rank_index < ranks.size(), "rank ", rank_index,
               " out of range");
    if (command.type == CommandType::Nop)
        return; // NOPs do not occupy the command bus.
    claimBus(command.cycle);
    ranks[rank_index]->issue(command);
}

std::vector<std::uint8_t>
Channel::readColumn(unsigned rank_index, unsigned bank, unsigned column,
                    Cycles cycle)
{
    RHS_ASSERT(rank_index < ranks.size(), "rank ", rank_index,
               " out of range");
    claimBus(cycle);
    return ranks[rank_index]->readColumn(bank, column, cycle);
}

} // namespace rhs::dram

/**
 * @file
 * One DRAM chip: a sparse store of row data.
 *
 * Only rows the host has written are materialized; everything else
 * reads as the post-power-up default. This keeps memory usage
 * proportional to the working set of a test (a victim row plus
 * V±[1..8] neighbours, §4.2) rather than to chip capacity.
 */

#ifndef RHS_DRAM_CHIP_HH
#define RHS_DRAM_CHIP_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dram/organization.hh"

namespace rhs::dram
{

/** Sparse per-chip cell data, addressed by physical row. */
class Chip
{
  public:
    /**
     * @param geometry Chip geometry (shared by the module).
     * @param index Position of this chip on the module.
     */
    Chip(const Geometry &geometry, unsigned index);

    /** Chip position on the module. */
    unsigned chipIndex() const { return index; }

    /**
     * Overwrite an entire row.
     * @param bank Bank index.
     * @param physical_row Physical row index.
     * @param data Exactly geometry.bytesPerRow() bytes.
     */
    void writeRow(unsigned bank, unsigned physical_row,
                  const std::vector<std::uint8_t> &data);

    /** Read an entire row (default-initialized if never written). */
    std::vector<std::uint8_t> readRow(unsigned bank,
                                      unsigned physical_row) const;

    /** Write one column word (x8 organization: one byte). */
    void writeByte(unsigned bank, unsigned physical_row, unsigned column,
                   std::uint8_t value);

    /** Read one column word. */
    std::uint8_t readByte(unsigned bank, unsigned physical_row,
                          unsigned column) const;

    /**
     * Flip a single stored bit: the fault model's injection point.
     * A flip in a never-written row materializes the row first.
     */
    void flipBit(unsigned bank, unsigned physical_row, unsigned column,
                 unsigned bit);

    /** True when the row has been materialized. */
    bool hasRow(unsigned bank, unsigned physical_row) const;

    /** Drop all stored data (power cycle). */
    void clear();

  private:
    std::uint64_t key(unsigned bank, unsigned physical_row) const;
    std::vector<std::uint8_t> &materialize(unsigned bank,
                                           unsigned physical_row);
    void checkAddress(unsigned bank, unsigned physical_row,
                      unsigned column) const;

    const Geometry &geometry;
    unsigned index;
    std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> rows;
};

} // namespace rhs::dram

#endif // RHS_DRAM_CHIP_HH

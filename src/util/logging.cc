#include "util/logging.hh"

#include <cstdlib>
#include <iostream>

namespace rhs::util
{

namespace
{
LogLevel globalLevel = LogLevel::Info;
} // namespace

LogLevel
logLevel()
{
    return globalLevel;
}

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

namespace detail
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << " @ " << file << ":" << line
              << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << " @ " << file << ":" << line
              << std::endl;
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (globalLevel >= LogLevel::Warn)
        std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    if (globalLevel >= LogLevel::Info)
        std::cout << "info: " << msg << std::endl;
}

void
debugImpl(const std::string &msg)
{
    if (globalLevel >= LogLevel::Debug)
        std::cerr << "debug: " << msg << std::endl;
}

} // namespace detail

} // namespace rhs::util

#include "util/logging.hh"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace rhs::util
{

namespace
{

std::atomic<LogLevel> globalLevel{LogLevel::Info};

/** Serializes sink writes so concurrent lines never interleave. */
std::mutex &
sinkMutex()
{
    static std::mutex mutex;
    return mutex;
}

std::atomic<unsigned> nextThreadIndex{0};
thread_local std::string threadTag;

/** Compose one complete line, then append it under the sink lock. */
void
emitLine(std::ostream &out, const char *prefix, const std::string &msg,
         const std::string &suffix = "")
{
    std::ostringstream line;
    line << prefix << " [" << logThreadTag() << "] " << msg << suffix
         << '\n';
    std::lock_guard lock(sinkMutex());
    out << line.str() << std::flush;
}

} // namespace

LogLevel
logLevel()
{
    return globalLevel.load();
}

void
setLogLevel(LogLevel level)
{
    globalLevel.store(level);
}

void
setLogThreadTag(const std::string &tag)
{
    threadTag = tag;
}

std::string
logThreadTag()
{
    if (threadTag.empty())
        threadTag = "t" + std::to_string(nextThreadIndex.fetch_add(1));
    return threadTag;
}

namespace detail
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    emitLine(std::cerr, "panic:", msg,
             std::string(" @ ") + file + ":" + std::to_string(line));
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    emitLine(std::cerr, "fatal:", msg,
             std::string(" @ ") + file + ":" + std::to_string(line));
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Warn)
        emitLine(std::cerr, "warn:", msg);
}

void
informImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Info)
        emitLine(std::cout, "info:", msg);
}

void
statusImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Info)
        emitLine(std::cerr, "info:", msg);
}

void
debugImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Debug)
        emitLine(std::cerr, "debug:", msg);
}

} // namespace detail

} // namespace rhs::util

/**
 * @file
 * Work-sharing thread pool for the characterization toolkit.
 *
 * The paper's methodology is embarrassingly parallel: every BER test,
 * HCfirst binary search and sweep point is an independent pure
 * function of (module, row, condition, trial). The pool exploits that
 * with two primitives:
 *
 *  - parallelFor(first, last, fn): call fn(i) for every index in
 *    [first, last), distributed over the worker threads in statically
 *    chunked slices;
 *  - parallelMap(n, fn): collect fn(i) into a pre-sized vector.
 *
 * Determinism contract: results are bit-identical for ANY job count
 * as long as fn writes only to per-index state (pre-sized output
 * slots, never appends) and derives any randomness from per-item seed
 * tuples — which is how the whole rhmodel:: derivation chain already
 * works (see docs/MODEL.md, "Determinism under parallel execution").
 *
 * A single global pool (ThreadPool::instance()) is shared by all
 * analyses; configure its width once at startup with
 * ThreadPool::configure(jobs). jobs == 1 degrades to plain serial
 * loops on the calling thread — no worker threads are created — so a
 * result difference between jobs == 1 and jobs > 1 pins a bug to the
 * threading layer.
 */

#ifndef RHS_UTIL_THREAD_POOL_HH
#define RHS_UTIL_THREAD_POOL_HH

#include <cstddef>
#include <functional>
#include <type_traits>
#include <vector>

namespace rhs::util
{

/** Fixed-width pool of std::jthread workers with a shared task queue. */
class ThreadPool
{
  public:
    /**
     * @param jobs Total execution width including the calling thread;
     *        clamped to >= 1. jobs - 1 workers are spawned (none for
     *        jobs == 1: every parallelFor then runs inline).
     */
    explicit ThreadPool(unsigned jobs);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Execution width this pool was built with. */
    unsigned jobs() const { return jobCount; }

    /**
     * Invoke fn(i) for every i in [first, last) and block until all
     * calls returned. Indices are processed in statically chunked
     * contiguous slices; the calling thread participates. Calls from
     * inside a pool task run inline (serially) so nested parallelism
     * cannot deadlock the fixed-width pool.
     */
    void parallelFor(std::size_t first, std::size_t last,
                     const std::function<void(std::size_t)> &fn);

    /**
     * Collect fn(i) for i in [0, n) into a vector, in index order.
     * The element type must be default-constructible (slots are
     * pre-sized and written by index, per the determinism contract).
     */
    template <typename Fn>
    auto
    parallelMap(std::size_t n, Fn &&fn)
        -> std::vector<std::decay_t<std::invoke_result_t<Fn &, std::size_t>>>
    {
        using T = std::decay_t<std::invoke_result_t<Fn &, std::size_t>>;
        std::vector<T> out(n);
        parallelFor(0, n,
                    [&](std::size_t i) { out[i] = fn(i); });
        return out;
    }

    /**
     * The process-wide pool used by core:: analyses. Created on first
     * use with the configured width (default: hardwareJobs()).
     */
    static ThreadPool &instance();

    /**
     * Set the global pool width. Destroys any existing global pool
     * and rebuilds it lazily on next use; must not be called while
     * parallel work is in flight. jobs == 0 resets to hardwareJobs().
     */
    static void configure(unsigned jobs);

    /** Width configure()/instance() default to. */
    static unsigned hardwareJobs();

  private:
    struct Impl;
    void workerLoop();
    bool runOneTask();

    unsigned jobCount;
    Impl *impl; //!< Queue + workers; null when jobCount == 1.
};

/** Shorthand for ThreadPool::instance().parallelFor(...). */
inline void
parallelFor(std::size_t first, std::size_t last,
            const std::function<void(std::size_t)> &fn)
{
    ThreadPool::instance().parallelFor(first, last, fn);
}

} // namespace rhs::util

#endif // RHS_UTIL_THREAD_POOL_HH

/**
 * @file
 * Read-only memory-mapped file access.
 *
 * The snapshot reader (src/snap) serves curve pages straight out of
 * the kernel page cache: open() maps the whole file MAP_PRIVATE and
 * hands out a stable byte span for the file's lifetime. Nothing is
 * read eagerly — pages fault in on first access, which is what makes
 * a multi-gigabyte snapshot load in milliseconds.
 *
 * A MappedFile is movable but not copyable; the mapping is released
 * in the destructor. Consumers that need the bytes to outlive the
 * object (zero-copy RowEval views into a snapshot) hold the owning
 * std::shared_ptr<MappedFile> as their keep-alive token.
 */

#ifndef RHS_UTIL_MMAP_FILE_HH
#define RHS_UTIL_MMAP_FILE_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace rhs::util
{

/** One read-only mmap of a whole file. */
class MappedFile
{
  public:
    MappedFile() = default;
    ~MappedFile() { reset(); }

    MappedFile(const MappedFile &) = delete;
    MappedFile &operator=(const MappedFile &) = delete;

    MappedFile(MappedFile &&other) noexcept { swap(other); }
    MappedFile &
    operator=(MappedFile &&other) noexcept
    {
        reset();
        swap(other);
        return *this;
    }

    /**
     * Map `path` read-only.
     *
     * @param error Filled with a description on failure (missing
     *        file, empty file, mmap error).
     * @return True when data()/size() are valid.
     */
    bool open(const std::string &path, std::string &error);

    /** Unmap; the object returns to the default-constructed state. */
    void reset();

    bool valid() const { return base != nullptr; }
    const std::uint8_t *data() const { return base; }
    std::size_t size() const { return length; }

  private:
    void
    swap(MappedFile &other) noexcept
    {
        const auto *b = base;
        const auto l = length;
        base = other.base;
        length = other.length;
        other.base = b;
        other.length = l;
    }

    const std::uint8_t *base = nullptr;
    std::size_t length = 0;
};

} // namespace rhs::util

#endif // RHS_UTIL_MMAP_FILE_HH

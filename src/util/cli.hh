/**
 * @file
 * Tiny command-line option parser used by benches and examples.
 *
 * Supports "--name value", "--name=value", and boolean "--flag" forms.
 * Unknown options are fatal so typos surface immediately.
 */

#ifndef RHS_UTIL_CLI_HH
#define RHS_UTIL_CLI_HH

#include <map>
#include <string>
#include <vector>

namespace rhs::util
{

/** Parsed command-line options with typed accessors and defaults. */
class Cli
{
  public:
    /**
     * Parse argv.
     *
     * @param argc Argument count from main().
     * @param argv Argument vector from main().
     * @param known Names (without "--") this program accepts.
     */
    Cli(int argc, const char *const *argv,
        const std::vector<std::string> &known);

    /**
     * Parse an already-tokenized argument list (no program name).
     * Used by subcommand-style drivers that strip the leading
     * positional before parsing options.
     */
    Cli(const std::vector<std::string> &args,
        const std::vector<std::string> &known);

    /** True when "--name" was present (with or without a value). */
    bool has(const std::string &name) const;

    /** String value of "--name", or fallback when absent. */
    std::string get(const std::string &name,
                    const std::string &fallback) const;

    /**
     * Integer value of "--name", or fallback when absent. Fatal when
     * the value is present but not a complete decimal integer
     * ("--rows 40x" and "--rows abc" are rejected, not truncated).
     */
    long getInt(const std::string &name, long fallback) const;

    /**
     * Floating-point value of "--name", or fallback when absent.
     * Fatal when the value is present but malformed, exactly like
     * getInt.
     */
    double getDouble(const std::string &name, double fallback) const;

  private:
    std::map<std::string, std::string> values;
};

} // namespace rhs::util

#endif // RHS_UTIL_CLI_HH

/**
 * @file
 * Build provenance.
 *
 * gitDescribe() returns the `git describe --always --dirty --tags`
 * of the source tree at configure time ("unknown" outside a git
 * checkout). Centralized here so every producer of attributable
 * artifacts — the rhs-report/1 envelope's "git" member, snapshot
 * file headers, the serve stats build info — stamps the same string
 * instead of each binary carrying its own compile definition.
 */

#ifndef RHS_UTIL_VERSION_HH
#define RHS_UTIL_VERSION_HH

namespace rhs::util
{

/** Configure-time `git describe` of the tree ("unknown" fallback). */
const char *gitDescribe();

} // namespace rhs::util

#endif // RHS_UTIL_VERSION_HH

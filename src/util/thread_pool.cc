#include "util/thread_pool.hh"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace rhs::util
{

namespace
{

//! Set while a thread is executing pool tasks; nested parallelFor
//! calls from such a thread run inline instead of re-entering the
//! queue (a fixed-width pool waiting on its own workers deadlocks).
thread_local bool t_inside_pool_task = false;

// Pool metrics (global registry; resolved once, references are
// stable). Chunks are coarse — a parallelFor enqueues at most
// jobs * 4 of them — so one counter bump and one clock read per chunk
// never shows up next to the chunk's own work.
obs::Counter &
poolCallsCounter()
{
    static obs::Counter &counter =
        obs::Registry::global().counter("pool.parallel_for_calls");
    return counter;
}

obs::Counter &
poolTasksCounter()
{
    static obs::Counter &counter =
        obs::Registry::global().counter("pool.tasks_executed");
    return counter;
}

obs::Histogram &
poolWaitHistogram()
{
    static obs::Histogram &histogram =
        obs::Registry::global().histogram(
            "pool.queue_wait_us", obs::exponentialBounds(1.0, 4.0, 10));
    return histogram;
}

} // namespace

struct ThreadPool::Impl
{
    std::mutex mutex;
    std::condition_variable_any cv;
    std::deque<std::function<void()>> queue;
    bool stopping = false;
    std::vector<std::jthread> workers;
};

ThreadPool::ThreadPool(unsigned jobs)
    : jobCount(jobs == 0 ? 1 : jobs), impl(nullptr)
{
    obs::Registry::global().gauge("pool.jobs").set(jobCount);
    if (jobCount == 1)
        return;
    impl = new Impl;
    impl->workers.reserve(jobCount - 1);
    for (unsigned w = 0; w + 1 < jobCount; ++w)
        impl->workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    if (!impl)
        return;
    {
        std::lock_guard lock(impl->mutex);
        impl->stopping = true;
    }
    impl->cv.notify_all();
    impl->workers.clear(); // jthread joins on destruction.
    delete impl;
}

void
ThreadPool::workerLoop()
{
    t_inside_pool_task = true;
    std::unique_lock lock(impl->mutex);
    for (;;) {
        impl->cv.wait(lock, [this] {
            return impl->stopping || !impl->queue.empty();
        });
        if (impl->queue.empty()) {
            if (impl->stopping)
                return;
            continue;
        }
        auto task = std::move(impl->queue.front());
        impl->queue.pop_front();
        lock.unlock();
        task();
        lock.lock();
    }
}

bool
ThreadPool::runOneTask()
{
    std::function<void()> task;
    {
        std::lock_guard lock(impl->mutex);
        if (impl->queue.empty())
            return false;
        task = std::move(impl->queue.front());
        impl->queue.pop_front();
    }
    task();
    return true;
}

void
ThreadPool::parallelFor(std::size_t first, std::size_t last,
                        const std::function<void(std::size_t)> &fn)
{
    if (first >= last)
        return;
    poolCallsCounter().add(1);
    const std::size_t range = last - first;
    if (jobCount == 1 || range == 1 || t_inside_pool_task) {
        for (std::size_t i = first; i < last; ++i)
            fn(i);
        return;
    }

    // Static chunking: a few slices per job gives balance without
    // per-index queue traffic. Slice boundaries never affect results
    // (the determinism contract: fn writes per-index state only).
    const std::size_t chunks =
        std::min<std::size_t>(range, std::size_t{jobCount} * 4);
    const std::size_t base = range / chunks;
    const std::size_t extra = range % chunks;

    struct Sync
    {
        std::mutex mutex;
        std::condition_variable cv;
        std::size_t remaining;
    };
    auto sync = std::make_shared<Sync>();
    sync->remaining = chunks;

    // Clock reads for the queue-wait histogram are gated so a build
    // with RHS_OBS=OFF (or a runtime-disabled run) pays nothing.
    const std::uint64_t enqueued_us =
        obs::timingActive() ? obs::traceNowUs() : 0;
    std::size_t begin = first;
    {
        std::lock_guard lock(impl->mutex);
        for (std::size_t c = 0; c < chunks; ++c) {
            const std::size_t len = base + (c < extra ? 1 : 0);
            const std::size_t end = begin + len;
            impl->queue.emplace_back([&fn, begin, end, sync,
                                      enqueued_us] {
                poolTasksCounter().add(1);
                if (enqueued_us != 0 && obs::timingActive())
                    poolWaitHistogram().observe(static_cast<double>(
                        obs::traceNowUs() - enqueued_us));
                const bool was_inside = t_inside_pool_task;
                t_inside_pool_task = true;
                for (std::size_t i = begin; i < end; ++i)
                    fn(i);
                t_inside_pool_task = was_inside;
                std::lock_guard done_lock(sync->mutex);
                if (--sync->remaining == 0)
                    sync->cv.notify_all();
            });
            begin = end;
        }
    }
    impl->cv.notify_all();

    // The caller participates instead of idling. It may execute
    // chunks of unrelated concurrent parallelFor calls; that only
    // helps drain the queue.
    while (runOneTask()) {
        std::lock_guard lock(sync->mutex);
        if (sync->remaining == 0)
            break;
    }
    std::unique_lock lock(sync->mutex);
    sync->cv.wait(lock, [&] { return sync->remaining == 0; });
}

namespace
{

std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;
unsigned g_configured_jobs = 0; // 0 = hardwareJobs().

} // namespace

ThreadPool &
ThreadPool::instance()
{
    std::lock_guard lock(g_pool_mutex);
    if (!g_pool) {
        const unsigned jobs = g_configured_jobs == 0
                                  ? hardwareJobs()
                                  : g_configured_jobs;
        g_pool = std::make_unique<ThreadPool>(jobs);
    }
    return *g_pool;
}

void
ThreadPool::configure(unsigned jobs)
{
    std::lock_guard lock(g_pool_mutex);
    g_configured_jobs = jobs;
    g_pool.reset();
}

unsigned
ThreadPool::hardwareJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

} // namespace rhs::util

/**
 * @file
 * Stateless 64-bit hashing utilities.
 *
 * The RowHammer fault model generates per-cell parameters procedurally:
 * every random quantity is a pure function of a seed tuple (module serial,
 * bank, row, cell index, condition, ...). This keeps the model fully
 * deterministic and storage-free. All hashing in the project funnels
 * through this header so the derivation chain is auditable.
 */

#ifndef RHS_UTIL_HASH_HH
#define RHS_UTIL_HASH_HH

#include <cstdint>
#include <cstring>

namespace rhs::util
{

/**
 * SplitMix64 finalizer. A high-quality 64-bit mixing function
 * (Steele et al., "Fast splittable pseudorandom number generators").
 *
 * @param x Input word.
 * @return Avalanched output word.
 */
constexpr std::uint64_t
splitMix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Combine a running hash with one more word. */
constexpr std::uint64_t
hashCombine(std::uint64_t seed, std::uint64_t value)
{
    return splitMix64(seed ^ (value + 0x9e3779b97f4a7c15ULL +
                              (seed << 6) + (seed >> 2)));
}

/** Hash an arbitrary-length tuple of 64-bit words. */
template <typename... Ts>
constexpr std::uint64_t
hashTuple(std::uint64_t first, Ts... rest)
{
    std::uint64_t h = splitMix64(first);
    ((h = hashCombine(h, static_cast<std::uint64_t>(rest))), ...);
    return h;
}

/**
 * Hash an arbitrary byte range (the rhs-snap/1 section and record
 * digests, and the snapshot index's key hash).
 *
 * Built for throughput on curve-page-sized inputs: four independent
 * multiply-xor lanes each consume every fourth 64-bit word (no
 * serial dependency between loads, ~8 bytes/cycle on one core), then
 * the lanes and the length fold through splitMix64. Byte-serial
 * hashing here would make warm-start digest verification cost more
 * than the kernel recompute it replaces.
 *
 * Not cryptographic: digests detect corruption and mismatched keys,
 * not adversaries — the same trust model as a CRC, with better
 * mixing.
 */
inline std::uint64_t
bytesHash64(const void *data, std::size_t size)
{
    constexpr std::uint64_t kMul = 0x9ddfea08eb382d69ULL;
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint64_t lane[4] = {0x243f6a8885a308d3ULL, 0x13198a2e03707344ULL,
                             0xa4093822299f31d0ULL, 0x082efa98ec4e6c89ULL};
    std::size_t i = 0;
    for (; i + 32 <= size; i += 32) {
        std::uint64_t w[4];
        std::memcpy(w, p + i, 32);
        for (int l = 0; l < 4; ++l)
            lane[l] = (lane[l] ^ w[l]) * kMul;
    }
    for (; i + 8 <= size; i += 8) {
        std::uint64_t w;
        std::memcpy(&w, p + i, 8);
        lane[(i / 8) & 3] = (lane[(i / 8) & 3] ^ w) * kMul;
    }
    if (i < size) {
        std::uint64_t w = 0;
        std::memcpy(&w, p + i, size - i);
        lane[0] = (lane[0] ^ w) * kMul;
    }
    std::uint64_t h = splitMix64(size);
    for (const std::uint64_t l : lane)
        h = hashCombine(h, splitMix64(l));
    return h;
}

/** Map a hash word to a double uniformly distributed in [0, 1). */
constexpr double
toUnitDouble(std::uint64_t h)
{
    // 53 mantissa bits give the densest uniform grid representable
    // exactly in an IEEE double.
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

} // namespace rhs::util

#endif // RHS_UTIL_HASH_HH

/**
 * @file
 * Stateless 64-bit hashing utilities.
 *
 * The RowHammer fault model generates per-cell parameters procedurally:
 * every random quantity is a pure function of a seed tuple (module serial,
 * bank, row, cell index, condition, ...). This keeps the model fully
 * deterministic and storage-free. All hashing in the project funnels
 * through this header so the derivation chain is auditable.
 */

#ifndef RHS_UTIL_HASH_HH
#define RHS_UTIL_HASH_HH

#include <cstdint>

namespace rhs::util
{

/**
 * SplitMix64 finalizer. A high-quality 64-bit mixing function
 * (Steele et al., "Fast splittable pseudorandom number generators").
 *
 * @param x Input word.
 * @return Avalanched output word.
 */
constexpr std::uint64_t
splitMix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Combine a running hash with one more word. */
constexpr std::uint64_t
hashCombine(std::uint64_t seed, std::uint64_t value)
{
    return splitMix64(seed ^ (value + 0x9e3779b97f4a7c15ULL +
                              (seed << 6) + (seed >> 2)));
}

/** Hash an arbitrary-length tuple of 64-bit words. */
template <typename... Ts>
constexpr std::uint64_t
hashTuple(std::uint64_t first, Ts... rest)
{
    std::uint64_t h = splitMix64(first);
    ((h = hashCombine(h, static_cast<std::uint64_t>(rest))), ...);
    return h;
}

/** Map a hash word to a double uniformly distributed in [0, 1). */
constexpr double
toUnitDouble(std::uint64_t h)
{
    // 53 mantissa bits give the densest uniform grid representable
    // exactly in an IEEE double.
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

} // namespace rhs::util

#endif // RHS_UTIL_HASH_HH

/**
 * @file
 * Minimal gem5-style status/error reporting.
 *
 * panic()  - internal invariant violated; aborts (a framework bug).
 * fatal()  - unrecoverable user/configuration error; exits with code 1.
 * warn()   - suspicious but survivable condition.
 * inform() - plain status output (stdout).
 * status() - plain status output on stderr, for processes whose
 *            stdout is a deliverable (rhs-bench tables must stay
 *            byte-identical whatever the host logs).
 *
 * Sinks are thread-safe: each call composes its complete line first
 * and appends it under one process-wide lock, so concurrent logging
 * (the rhs-serve connection threads, the thread pool) never
 * interleaves characters. Every line carries a thread tag —
 * "warn: [conn3] ..." — auto-assigned ("t0", "t1", ...) in first-use
 * order, or set explicitly with setLogThreadTag() so server log lines
 * are attributable to their connection.
 */

#ifndef RHS_UTIL_LOGGING_HH
#define RHS_UTIL_LOGGING_HH

#include <sstream>
#include <string>

namespace rhs::util
{

/** Verbosity levels, ordered by severity. */
enum class LogLevel { Silent, Fatal, Warn, Info, Debug };

/** Process-wide verbosity threshold (default: Info). */
LogLevel logLevel();

/** Set the process-wide verbosity threshold. */
void setLogLevel(LogLevel level);

/**
 * Name the calling thread in every log line it emits (e.g. "conn3",
 * "dispatch"). An empty tag reverts to the auto-assigned "t<N>".
 */
void setLogThreadTag(const std::string &tag);

/** The calling thread's tag, auto-assigning "t<N>" on first use. */
std::string logThreadTag();

namespace detail
{
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
void statusImpl(const std::string &msg);
void debugImpl(const std::string &msg);

/** Stream-concatenate arbitrary arguments into a string. */
template <typename... Ts>
std::string
concat(Ts &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Ts>(args));
    return oss.str();
}
} // namespace detail

/** Abort on an internal invariant violation. */
template <typename... Ts>
[[noreturn]] void
panic(const char *file, int line, Ts &&...args)
{
    detail::panicImpl(file, line, detail::concat(std::forward<Ts>(args)...));
}

/** Exit on an unrecoverable user error. */
template <typename... Ts>
[[noreturn]] void
fatal(const char *file, int line, Ts &&...args)
{
    detail::fatalImpl(file, line, detail::concat(std::forward<Ts>(args)...));
}

template <typename... Ts>
void
warn(Ts &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Ts>(args)...));
}

template <typename... Ts>
void
inform(Ts &&...args)
{
    detail::informImpl(detail::concat(std::forward<Ts>(args)...));
}

template <typename... Ts>
void
status(Ts &&...args)
{
    detail::statusImpl(detail::concat(std::forward<Ts>(args)...));
}

template <typename... Ts>
void
debug(Ts &&...args)
{
    detail::debugImpl(detail::concat(std::forward<Ts>(args)...));
}

} // namespace rhs::util

#define RHS_PANIC(...) ::rhs::util::panic(__FILE__, __LINE__, __VA_ARGS__)
#define RHS_FATAL(...) ::rhs::util::fatal(__FILE__, __LINE__, __VA_ARGS__)

/** Assert an internal invariant; compiled in all build types. */
#define RHS_ASSERT(cond, ...)                                               \
    do {                                                                    \
        if (!(cond))                                                        \
            RHS_PANIC("assertion failed: " #cond " ", ##__VA_ARGS__);       \
    } while (0)

#endif // RHS_UTIL_LOGGING_HH

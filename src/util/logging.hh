/**
 * @file
 * Minimal gem5-style status/error reporting.
 *
 * panic()  - internal invariant violated; aborts (a framework bug).
 * fatal()  - unrecoverable user/configuration error; exits with code 1.
 * warn()   - suspicious but survivable condition.
 * inform() - plain status output.
 */

#ifndef RHS_UTIL_LOGGING_HH
#define RHS_UTIL_LOGGING_HH

#include <sstream>
#include <string>

namespace rhs::util
{

/** Verbosity levels, ordered by severity. */
enum class LogLevel { Silent, Fatal, Warn, Info, Debug };

/** Process-wide verbosity threshold (default: Info). */
LogLevel logLevel();

/** Set the process-wide verbosity threshold. */
void setLogLevel(LogLevel level);

namespace detail
{
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
void debugImpl(const std::string &msg);

/** Stream-concatenate arbitrary arguments into a string. */
template <typename... Ts>
std::string
concat(Ts &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Ts>(args));
    return oss.str();
}
} // namespace detail

/** Abort on an internal invariant violation. */
template <typename... Ts>
[[noreturn]] void
panic(const char *file, int line, Ts &&...args)
{
    detail::panicImpl(file, line, detail::concat(std::forward<Ts>(args)...));
}

/** Exit on an unrecoverable user error. */
template <typename... Ts>
[[noreturn]] void
fatal(const char *file, int line, Ts &&...args)
{
    detail::fatalImpl(file, line, detail::concat(std::forward<Ts>(args)...));
}

template <typename... Ts>
void
warn(Ts &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Ts>(args)...));
}

template <typename... Ts>
void
inform(Ts &&...args)
{
    detail::informImpl(detail::concat(std::forward<Ts>(args)...));
}

template <typename... Ts>
void
debug(Ts &&...args)
{
    detail::debugImpl(detail::concat(std::forward<Ts>(args)...));
}

} // namespace rhs::util

#define RHS_PANIC(...) ::rhs::util::panic(__FILE__, __LINE__, __VA_ARGS__)
#define RHS_FATAL(...) ::rhs::util::fatal(__FILE__, __LINE__, __VA_ARGS__)

/** Assert an internal invariant; compiled in all build types. */
#define RHS_ASSERT(cond, ...)                                               \
    do {                                                                    \
        if (!(cond))                                                        \
            RHS_PANIC("assertion failed: " #cond " ", ##__VA_ARGS__);       \
    } while (0)

#endif // RHS_UTIL_LOGGING_HH

#include "util/cli.hh"

#include <algorithm>
#include <cstdlib>

#include "util/logging.hh"

namespace rhs::util
{

Cli::Cli(int argc, const char *const *argv,
         const std::vector<std::string> &known)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0)
            RHS_FATAL("unexpected positional argument: ", arg);
        arg = arg.substr(2);

        std::string name = arg;
        std::string value = "1";
        if (auto eq = arg.find('='); eq != std::string::npos) {
            name = arg.substr(0, eq);
            value = arg.substr(eq + 1);
        } else if (i + 1 < argc &&
                   std::string(argv[i + 1]).rfind("--", 0) != 0) {
            value = argv[++i];
        }

        if (std::find(known.begin(), known.end(), name) == known.end())
            RHS_FATAL("unknown option --", name);
        values[name] = value;
    }
}

bool
Cli::has(const std::string &name) const
{
    return values.count(name) > 0;
}

std::string
Cli::get(const std::string &name, const std::string &fallback) const
{
    auto it = values.find(name);
    return it == values.end() ? fallback : it->second;
}

long
Cli::getInt(const std::string &name, long fallback) const
{
    auto it = values.find(name);
    return it == values.end() ? fallback : std::strtol(
        it->second.c_str(), nullptr, 10);
}

double
Cli::getDouble(const std::string &name, double fallback) const
{
    auto it = values.find(name);
    return it == values.end() ? fallback : std::strtod(
        it->second.c_str(), nullptr);
}

} // namespace rhs::util

#include "util/cli.hh"

#include <algorithm>
#include <cerrno>
#include <cstdlib>

#include "util/logging.hh"

namespace rhs::util
{

namespace
{

/** Tokenize argv (skipping the program name) into strings. */
std::vector<std::string>
tokenize(int argc, const char *const *argv)
{
    std::vector<std::string> args;
    args.reserve(argc > 0 ? argc - 1 : 0);
    for (int i = 1; i < argc; ++i)
        args.emplace_back(argv[i]);
    return args;
}

} // namespace

Cli::Cli(int argc, const char *const *argv,
         const std::vector<std::string> &known)
    : Cli(tokenize(argc, argv), known)
{
}

Cli::Cli(const std::vector<std::string> &args,
         const std::vector<std::string> &known)
{
    for (std::size_t i = 0; i < args.size(); ++i) {
        std::string arg = args[i];
        if (arg.rfind("--", 0) != 0)
            RHS_FATAL("unexpected positional argument: ", arg);
        arg = arg.substr(2);

        std::string name = arg;
        std::string value = "1";
        if (auto eq = arg.find('='); eq != std::string::npos) {
            name = arg.substr(0, eq);
            value = arg.substr(eq + 1);
        } else if (i + 1 < args.size() &&
                   args[i + 1].rfind("--", 0) != 0) {
            value = args[++i];
        }

        if (std::find(known.begin(), known.end(), name) == known.end())
            RHS_FATAL("unknown option --", name);
        values[name] = value;
    }
}

bool
Cli::has(const std::string &name) const
{
    return values.count(name) > 0;
}

std::string
Cli::get(const std::string &name, const std::string &fallback) const
{
    auto it = values.find(name);
    return it == values.end() ? fallback : it->second;
}

long
Cli::getInt(const std::string &name, long fallback) const
{
    auto it = values.find(name);
    if (it == values.end())
        return fallback;
    const std::string &text = it->second;
    char *end = nullptr;
    errno = 0;
    const long value = std::strtol(text.c_str(), &end, 10);
    if (text.empty() || end != text.c_str() + text.size() ||
        errno == ERANGE)
        RHS_FATAL("malformed integer for --", name, ": '", text, "'");
    return value;
}

double
Cli::getDouble(const std::string &name, double fallback) const
{
    auto it = values.find(name);
    if (it == values.end())
        return fallback;
    const std::string &text = it->second;
    char *end = nullptr;
    errno = 0;
    const double value = std::strtod(text.c_str(), &end);
    if (text.empty() || end != text.c_str() + text.size() ||
        errno == ERANGE)
        RHS_FATAL("malformed number for --", name, ": '", text, "'");
    return value;
}

} // namespace rhs::util

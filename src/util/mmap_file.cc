#include "util/mmap_file.hh"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace rhs::util
{

bool
MappedFile::open(const std::string &path, std::string &error)
{
    reset();
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
        error = path + ": " + std::strerror(errno);
        return false;
    }
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
        error = path + ": fstat: " + std::strerror(errno);
        ::close(fd);
        return false;
    }
    if (st.st_size <= 0) {
        error = path + ": empty file";
        ::close(fd);
        return false;
    }
    void *mapped = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                          PROT_READ, MAP_PRIVATE, fd, 0);
    // The mapping holds its own reference to the file; the descriptor
    // is not needed past this point either way.
    ::close(fd);
    if (mapped == MAP_FAILED) {
        error = path + ": mmap: " + std::strerror(errno);
        return false;
    }
    base = static_cast<const std::uint8_t *>(mapped);
    length = static_cast<std::size_t>(st.st_size);
    return true;
}

void
MappedFile::reset()
{
    if (base != nullptr)
        ::munmap(const_cast<std::uint8_t *>(base), length);
    base = nullptr;
    length = 0;
}

} // namespace rhs::util

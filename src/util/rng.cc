#include "util/rng.hh"

#include <cmath>

namespace rhs::util
{

double
Rng::gaussian()
{
    // Box-Muller transform. u1 is kept away from zero so that
    // log(u1) is finite.
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 1e-300);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    return r * std::cos(2.0 * M_PI * u2);
}

double
Rng::logNormal(double mu, double sigma)
{
    return std::exp(gaussian(mu, sigma));
}

unsigned
Rng::poisson(double mean)
{
    if (mean <= 0.0)
        return 0;

    if (mean < 30.0) {
        // Knuth's multiplication method for small means.
        const double limit = std::exp(-mean);
        double product = uniform();
        unsigned count = 0;
        while (product > limit) {
            product *= uniform();
            ++count;
        }
        return count;
    }

    // Gaussian approximation for large means; adequate for cell-count
    // generation where mean is already a modelled quantity.
    const double value = gaussian(mean, std::sqrt(mean));
    return value < 0.0 ? 0u : static_cast<unsigned>(value + 0.5);
}

} // namespace rhs::util

/**
 * @file
 * Seeded stream RNG and stateless distribution helpers.
 */

#ifndef RHS_UTIL_RNG_HH
#define RHS_UTIL_RNG_HH

#include <cstdint>

#include "util/hash.hh"

namespace rhs::util
{

/**
 * Counter-based pseudorandom stream built on SplitMix64.
 *
 * Unlike std::mt19937 the stream is trivially seedable from a hash tuple,
 * cheap to construct, and its output is reproducible across platforms
 * and standard-library versions (the C++ distributions are not).
 */
class Rng
{
  public:
    /** Construct from an already-mixed seed word. */
    explicit Rng(std::uint64_t seed) : state(seed) {}

    /** Next raw 64-bit word. */
    std::uint64_t
    next()
    {
        state += 0x9e3779b97f4a7c15ULL;
        return splitMix64(state);
    }

    /** Uniform double in [0, 1). */
    double uniform() { return toUnitDouble(next()); }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n). @pre n > 0. */
    std::uint64_t
    uniformInt(std::uint64_t n)
    {
        // Multiply-shift; bias is negligible for n << 2^64.
        return static_cast<std::uint64_t>(uniform() *
                                          static_cast<double>(n));
    }

    /** Standard normal via Box-Muller (one value per call). */
    double gaussian();

    /** Normal with the given mean and standard deviation. */
    double
    gaussian(double mean, double sigma)
    {
        return mean + sigma * gaussian();
    }

    /** Log-normal: exp(N(mu, sigma)). */
    double logNormal(double mu, double sigma);

    /** Poisson-distributed count with the given mean. */
    unsigned poisson(double mean);

    /** Bernoulli trial. */
    bool bernoulli(double p) { return uniform() < p; }

  private:
    std::uint64_t state;
};

} // namespace rhs::util

#endif // RHS_UTIL_RNG_HH

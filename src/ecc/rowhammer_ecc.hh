/**
 * @file
 * RowHammer-vs-ECC analysis (Defense Improvement 6, §8.2).
 *
 * Obsvs. 13-14 show bit flips cluster in certain columns. A SEC-DED
 * word built from 8 *consecutive* columns therefore sees correlated
 * multi-bit errors (uncorrectable or, worse, silently mis-corrected),
 * while a layout that interleaves a word's bytes across distant
 * columns decorrelates them — the "ECC schemes optimized for
 * non-uniform bit error probability distributions across columns" the
 * paper proposes.
 */

#ifndef RHS_ECC_ROWHAMMER_ECC_HH
#define RHS_ECC_ROWHAMMER_ECC_HH

#include <cstdint>
#include <vector>

#include "dram/organization.hh"
#include "ecc/secded.hh"

namespace rhs::ecc
{

/** How a chip row's bytes are grouped into 64-bit ECC words. */
enum class WordLayout
{
    Contiguous,  //!< Word w = columns [8w, 8w+8): the naive layout.
    Interleaved, //!< Word w = columns {w, w+W, w+2W, ...}: spreads a
                 //!< word across the row, decorrelating hot columns.
};

/** Aggregate ECC outcome over many hammered rows. */
struct EccOutcome
{
    std::uint64_t words = 0;          //!< Words carrying >= 1 flip.
    std::uint64_t corrected = 0;      //!< Single flip: ECC fixes it.
    std::uint64_t detected = 0;       //!< Flagged uncorrectable.
    std::uint64_t silentCorruption = 0; //!< Mis-corrected (>= 3 flips)
                                        //!< or undetected damage.

    /** Fraction of error words ECC silently corrupts. */
    double silentRate() const;

    /** Fraction of error words fully handled (corrected). */
    double correctedRate() const;

    /** Merge another outcome into this one. */
    void merge(const EccOutcome &other);
};

/**
 * Run the actual SEC-DED codec over every word a set of flips touches.
 *
 * @param flips Flipped cell locations of one victim row.
 * @param geometry Chip geometry (columns per row).
 * @param layout How bytes map to ECC words.
 */
EccOutcome analyzeFlips(const std::vector<dram::CellLocation> &flips,
                        const dram::Geometry &geometry,
                        WordLayout layout);

/**
 * The word index a column belongs to under a layout (exposed for
 * tests).
 *
 * @param column Column (byte) address within the chip row.
 * @param columns_per_row Row width in columns. @pre multiple of 8.
 */
unsigned wordOf(unsigned column, unsigned columns_per_row,
                WordLayout layout);

/** The byte slot (0..7) a column occupies within its word. */
unsigned byteSlotOf(unsigned column, unsigned columns_per_row,
                    WordLayout layout);

} // namespace rhs::ecc

#endif // RHS_ECC_ROWHAMMER_ECC_HH

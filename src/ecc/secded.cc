#include "ecc/secded.hh"

#include <array>

#include "util/logging.hh"

namespace rhs::ecc
{

namespace
{

/** True when a codeword position holds a Hamming parity bit. */
constexpr bool
isParityPosition(unsigned position)
{
    return (position & (position - 1)) == 0; // Powers of two; pos >= 1.
}

/** Map data bit index (0..63) to its codeword position. */
unsigned
dataPosition(unsigned data_index)
{
    // Positions 1..71, skipping the parity powers of two.
    static const auto table = [] {
        std::array<unsigned, 64> t{};
        unsigned out = 0;
        for (unsigned pos = 1; pos < 72 && out < 64; ++pos) {
            if (!isParityPosition(pos))
                t[out++] = pos;
        }
        return t;
    }();
    return table[data_index];
}

/** Hamming syndrome over positions 1..71. */
unsigned
computeSyndrome(const std::bitset<72> &bits)
{
    unsigned syndrome = 0;
    for (unsigned pos = 1; pos < 72; ++pos) {
        if (bits[pos])
            syndrome ^= pos;
    }
    return syndrome;
}

/** Parity over all 72 bits. */
bool
overallParity(const std::bitset<72> &bits)
{
    return bits.count() % 2 != 0;
}

} // namespace

Codeword
encode(std::uint64_t data)
{
    Codeword codeword;
    for (unsigned i = 0; i < 64; ++i) {
        if ((data >> i) & 1)
            codeword.bits.set(dataPosition(i));
    }
    // Set the Hamming parity bits so the syndrome becomes zero.
    const unsigned syndrome = computeSyndrome(codeword.bits);
    for (unsigned k = 0; k < 7; ++k) {
        if ((syndrome >> k) & 1)
            codeword.bits.flip(1u << k);
    }
    RHS_ASSERT(computeSyndrome(codeword.bits) == 0, "encoder broken");
    // Overall parity (position 0) makes the total weight even.
    if (overallParity(codeword.bits))
        codeword.bits.set(0);
    return codeword;
}

Decoded
decode(const Codeword &codeword)
{
    Decoded result;
    auto bits = codeword.bits;
    const unsigned syndrome = computeSyndrome(bits);
    const bool parity_error = overallParity(bits);

    if (syndrome == 0 && !parity_error) {
        result.status = DecodeStatus::Clean;
    } else if (parity_error) {
        // Odd number of flips: assume one and correct it. Three or
        // more flips alias here and are silently mis-corrected — the
        // failure mode the RowHammer ECC analysis quantifies.
        if (syndrome == 0) {
            bits.reset(0); // The overall parity bit itself flipped.
        } else if (syndrome < 72) {
            bits.flip(syndrome);
        }
        // A syndrome >= 72 cannot name a position; fall through and
        // report it as detected instead of corrupting data.
        if (syndrome < 72)
            result.status = DecodeStatus::Corrected;
        else
            result.status = DecodeStatus::DetectedDouble;
    } else {
        // Even number of flips (>= 2): detected, not correctable.
        result.status = DecodeStatus::DetectedDouble;
    }

    for (unsigned i = 0; i < 64; ++i) {
        if (bits[dataPosition(i)])
            result.data |= 1ull << i;
    }
    return result;
}

void
flipBit(Codeword &codeword, unsigned position)
{
    RHS_ASSERT(position < 72, "codeword position out of range");
    codeword.bits.flip(position);
}

unsigned
dataBitPosition(unsigned data_index)
{
    RHS_ASSERT(data_index < 64, "data bit index out of range");
    return dataPosition(data_index);
}

} // namespace rhs::ecc

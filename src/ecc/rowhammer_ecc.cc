#include "ecc/rowhammer_ecc.hh"

#include <map>

#include "util/logging.hh"

namespace rhs::ecc
{

double
EccOutcome::silentRate() const
{
    return words == 0 ? 0.0
                      : static_cast<double>(silentCorruption) /
                            static_cast<double>(words);
}

double
EccOutcome::correctedRate() const
{
    return words == 0 ? 0.0
                      : static_cast<double>(corrected) /
                            static_cast<double>(words);
}

void
EccOutcome::merge(const EccOutcome &other)
{
    words += other.words;
    corrected += other.corrected;
    detected += other.detected;
    silentCorruption += other.silentCorruption;
}

unsigned
wordOf(unsigned column, unsigned columns_per_row, WordLayout layout)
{
    RHS_ASSERT(columns_per_row % 8 == 0, "row must tile 64-bit words");
    const unsigned words = columns_per_row / 8;
    if (layout == WordLayout::Contiguous)
        return column / 8;
    return column % words;
}

unsigned
byteSlotOf(unsigned column, unsigned columns_per_row, WordLayout layout)
{
    const unsigned words = columns_per_row / 8;
    if (layout == WordLayout::Contiguous)
        return column % 8;
    return column / words;
}

EccOutcome
analyzeFlips(const std::vector<dram::CellLocation> &flips,
             const dram::Geometry &geometry, WordLayout layout)
{
    // Group flipped data-bit indices per (chip, word).
    std::map<std::pair<unsigned, unsigned>, std::vector<unsigned>> words;
    for (const auto &flip : flips) {
        const unsigned word =
            wordOf(flip.column, geometry.columnsPerRow, layout);
        const unsigned slot =
            byteSlotOf(flip.column, geometry.columnsPerRow, layout);
        words[{flip.chip, word}].push_back(slot * 8 + flip.bit);
    }

    EccOutcome outcome;
    for (const auto &[key, data_bits] : words) {
        (void)key;
        ++outcome.words;

        // Exercise the real codec: encode a background word, flip the
        // stored bits the RowHammer flips correspond to, decode.
        constexpr std::uint64_t background = 0xA5A5'5A5A'C3C3'3C3Cull;
        auto stored = encode(background);
        for (unsigned data_bit : data_bits)
            flipBit(stored, dataBitPosition(data_bit));

        const auto decoded = decode(stored);
        switch (decoded.status) {
          case DecodeStatus::Clean:
            // Flips cancelled out into a valid codeword: silent.
            if (decoded.data != background)
                ++outcome.silentCorruption;
            break;
          case DecodeStatus::Corrected:
            if (decoded.data == background)
                ++outcome.corrected;
            else
                ++outcome.silentCorruption; // Mis-correction.
            break;
          case DecodeStatus::DetectedDouble:
            ++outcome.detected;
            break;
        }
    }
    return outcome;
}

} // namespace rhs::ecc

/**
 * @file
 * Hamming SEC-DED (72,64) codec.
 *
 * The standard single-error-correct / double-error-detect code used by
 * rank-level DRAM ECC: 64 data bits, 8 check bits (7 Hamming positions
 * plus an overall parity bit). Defense Improvement 6 (§8.2) asks how
 * ECC interacts with RowHammer's non-uniform spatial error
 * distribution; this codec is the substrate for that analysis.
 */

#ifndef RHS_ECC_SECDED_HH
#define RHS_ECC_SECDED_HH

#include <bitset>
#include <cstdint>

namespace rhs::ecc
{

/** A 72-bit SEC-DED codeword. */
struct Codeword
{
    std::bitset<72> bits;
};

/** Outcome of decoding a (possibly corrupted) codeword. */
enum class DecodeStatus
{
    Clean,          //!< No error detected.
    Corrected,      //!< Single-bit error corrected.
    DetectedDouble, //!< Double-bit error detected (uncorrectable).
};

/** Decode result: status plus recovered data. */
struct Decoded
{
    DecodeStatus status = DecodeStatus::Clean;
    std::uint64_t data = 0;
};

/** Encode 64 data bits into a 72-bit SEC-DED codeword. */
Codeword encode(std::uint64_t data);

/**
 * Decode a codeword, correcting a single flipped bit and detecting
 * double flips.
 *
 * Note the classic SEC-DED limitation the RowHammer-ECC analysis
 * exploits: three or more flips alias onto single-error syndromes and
 * are silently *mis*corrected — decode() then reports Corrected with
 * wrong data.
 */
Decoded decode(const Codeword &codeword);

/** Flip one bit of a codeword (fault injection). @pre position < 72 */
void flipBit(Codeword &codeword, unsigned position);

/**
 * The codeword position storing data bit `data_index` (0..63). A
 * RowHammer flip of a stored data cell toggles exactly this position.
 */
unsigned dataBitPosition(unsigned data_index);

} // namespace rhs::ecc

#endif // RHS_ECC_SECDED_HH

#include "serve/conn_layer.hh"

#include <algorithm>
#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>
#include <vector>

#include "serve/protocol.hh"
#include "util/logging.hh"

namespace rhs::serve
{

namespace
{

void
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void
setNoDelay(int fd)
{
    // Small framed RPCs must not wait out Nagle coalescing: a request
    // frame is ~100 bytes and the reply unblocks the caller.
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

} // namespace

ConnLayer::Conn::~Conn()
{
    if (fd >= 0)
        ::close(fd);
}

ConnLayer::ConnLayer(ConnLayerConfig config, Events events)
    : config(std::move(config)), events(std::move(events))
{
    RHS_ASSERT(this->config.maxConnections > 0,
               "maxConnections must be positive");
}

ConnLayer::~ConnLayer()
{
    drainAndStop();
}

void
ConnLayer::start()
{
    listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd < 0)
        RHS_FATAL(config.name, ": socket(): ", std::strerror(errno));
    const int one = 1;
    ::setsockopt(listenFd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config.port);
    if (::inet_pton(AF_INET, config.host.c_str(), &addr.sin_addr) != 1)
        RHS_FATAL(config.name, ": bad host address: ", config.host);
    if (::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0)
        RHS_FATAL(config.name, ": bind(", config.host, ":", config.port,
                  "): ", std::strerror(errno));
    // Backlog sized to the accept cap (the kernel clamps to
    // net.core.somaxconn): a fleet shard configured for 10k
    // connections must not bounce a connect burst off a hardcoded 128.
    const int backlog = static_cast<int>(
        std::min(config.maxConnections, 65535u));
    if (::listen(listenFd, backlog) != 0)
        RHS_FATAL(config.name, ": listen(): ", std::strerror(errno));
    setNonBlocking(listenFd);

    sockaddr_in bound{};
    socklen_t bound_len = sizeof bound;
    ::getsockname(listenFd, reinterpret_cast<sockaddr *>(&bound),
                  &bound_len);
    boundPort = ntohs(bound.sin_port);

    epollFd = ::epoll_create1(EPOLL_CLOEXEC);
    if (epollFd < 0)
        RHS_FATAL(config.name, ": epoll_create1(): ",
                  std::strerror(errno));
    wakeFd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (wakeFd < 0)
        RHS_FATAL(config.name, ": eventfd(): ", std::strerror(errno));

    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listenFd;
    ::epoll_ctl(epollFd, EPOLL_CTL_ADD, listenFd, &ev);
    ev.data.fd = wakeFd;
    ::epoll_ctl(epollFd, EPOLL_CTL_ADD, wakeFd, &ev);

    started.store(true);
    eventThread = std::thread([this] { loop(); });
}

void
ConnLayer::wake()
{
    if (wakeFd >= 0) {
        const std::uint64_t one = 1;
        [[maybe_unused]] const auto ignored =
            ::write(wakeFd, &one, sizeof one);
    }
}

void
ConnLayer::stopAccepting()
{
    if (acceptStopped.exchange(true))
        return;
    wake();
}

void
ConnLayer::drainAndStop()
{
    if (!started.load())
        return;
    {
        std::lock_guard lock(stopMutex);
        if (stopped)
            return;
        stopped = true;
    }
    stopAccepting();
    draining.store(true);
    wake();
    if (eventThread.joinable())
        eventThread.join();
    if (listenFd >= 0) {
        ::close(listenFd);
        listenFd = -1;
    }
    if (epollFd >= 0) {
        ::close(epollFd);
        epollFd = -1;
    }
    if (wakeFd >= 0) {
        ::close(wakeFd);
        wakeFd = -1;
    }
}

void
ConnLayer::updateInterest(Conn &conn)
{
    epoll_event ev{};
    ev.events = EPOLLIN | (conn.wantWrite ? EPOLLOUT : 0u);
    ev.data.fd = conn.fd;
    ::epoll_ctl(epollFd, EPOLL_CTL_MOD, conn.fd, &ev);
}

bool
ConnLayer::flushLocked(Conn &conn)
{
    while (conn.outOff < conn.outBuf.size()) {
        const ssize_t sent =
            ::send(conn.fd, conn.outBuf.data() + conn.outOff,
                   conn.outBuf.size() - conn.outOff, MSG_NOSIGNAL);
        if (sent < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return true; // Kernel buffer full; EPOLLOUT resumes.
            return false; // Dead peer (EPIPE/ECONNRESET/...).
        }
        conn.outOff += static_cast<std::size_t>(sent);
    }
    conn.outBuf.clear();
    conn.outOff = 0;
    return true;
}

bool
ConnLayer::send(const ConnPtr &conn, const std::string &body)
{
    if (conn == nullptr || !conn->open.load())
        return false;
    const std::string frame = encodeFrame(body);
    std::lock_guard lock(conn->writeMutex);
    if (!conn->open.load() || conn->fd < 0)
        return false;
    conn->outBuf.append(frame);
    if (!flushLocked(*conn)) {
        // Dead peer: stop buffering and let the event thread reap the
        // connection via the resulting EPOLLHUP/EPOLLERR.
        conn->outBuf.clear();
        conn->outOff = 0;
        ::shutdown(conn->fd, SHUT_RDWR);
        return false;
    }
    const bool backlogged = conn->outOff < conn->outBuf.size();
    if (conn->outBuf.size() - conn->outOff > config.maxWriteBuffer) {
        // The peer stopped reading long ago; cut it loose instead of
        // buffering without bound.
        conn->outBuf.clear();
        conn->outOff = 0;
        ::shutdown(conn->fd, SHUT_RDWR);
        return false;
    }
    if (backlogged != conn->wantWrite) {
        conn->wantWrite = backlogged;
        updateInterest(*conn);
    }
    return true;
}

void
ConnLayer::acceptReady()
{
    while (!acceptStopped.load()) {
        const int fd = ::accept4(listenFd, nullptr, nullptr,
                                 SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EMFILE || errno == ENFILE)
                util::warn(config.name,
                           ": accept(): out of file descriptors");
            return; // EAGAIN or a transient error; epoll re-arms us.
        }
        setNoDelay(fd);
        if (conns.size() >= config.maxConnections) {
            if (events.onRejected)
                events.onRejected(fd);
            ::close(fd);
            continue;
        }
        auto conn = std::make_shared<Conn>();
        conn->fd = fd;
        const unsigned id = nextConnId.fetch_add(1) + 1;
        conn->id = id;
        conn->layer = this;
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = fd;
        if (::epoll_ctl(epollFd, EPOLL_CTL_ADD, fd, &ev) != 0) {
            util::warn(config.name, ": epoll_ctl(ADD): ",
                       std::strerror(errno));
            continue; // conn destructor closes the fd.
        }
        conns.emplace(fd, std::move(conn));
        liveConns.store(conns.size());
        if (events.onAccepted)
            events.onAccepted(id);
    }
}

void
ConnLayer::closeConn(const ConnPtr &conn)
{
    ::epoll_ctl(epollFd, EPOLL_CTL_DEL, conn->fd, nullptr);
    {
        std::lock_guard lock(conn->writeMutex);
        conn->open.store(false);
        ::shutdown(conn->fd, SHUT_RDWR);
        conn->outBuf.clear();
        conn->outOff = 0;
    }
    conns.erase(conn->fd);
    liveConns.store(conns.size());
    // The fd itself closes when the last ConnPtr (possibly held by a
    // queued request) is dropped — see Conn::~Conn.
}

void
ConnLayer::parseBuffer(const ConnPtr &conn)
{
    Conn &c = *conn;
    std::string body;
    while (c.open.load()) {
        const std::size_t avail = c.inBuf.size() - c.inOff;
        if (c.discardLeft > 0) {
            const std::size_t take = static_cast<std::size_t>(
                std::min<std::uint64_t>(c.discardLeft, avail));
            c.inOff += take;
            c.discardLeft -= take;
            if (c.discardLeft > 0)
                break; // Need more bytes to finish the drain.
            if (events.onOversize)
                events.onOversize(conn);
            continue;
        }
        if (avail < 4)
            break; // Partial length prefix; wait for more bytes.
        const std::uint32_t length = decodeLength(
            reinterpret_cast<const unsigned char *>(c.inBuf.data() +
                                                    c.inOff));
        if (length > kMaxFrameBytes) {
            // Consume the prefix and drain the declared payload so
            // the stream stays frame-aligned (same as the blocking
            // reader).
            c.inOff += 4;
            c.discardLeft = length;
            continue;
        }
        if (avail < 4u + length)
            break; // Partial frame; reassemble on the next wakeup.
        body.assign(c.inBuf, c.inOff + 4, length);
        c.inOff += 4u + length;
        if (events.onFrame)
            events.onFrame(conn, std::move(body));
    }
    // Compact: drop the consumed prefix once it dominates the buffer.
    if (c.inOff == c.inBuf.size()) {
        c.inBuf.clear();
        c.inOff = 0;
    } else if (c.inOff > (64u << 10)) {
        c.inBuf.erase(0, c.inOff);
        c.inOff = 0;
    }
}

void
ConnLayer::readReady(const ConnPtr &conn)
{
    Conn &c = *conn;
    char buf[64 << 10];
    while (true) {
        const ssize_t got = ::recv(c.fd, buf, sizeof buf, 0);
        if (got > 0) {
            c.inBuf.append(buf, static_cast<std::size_t>(got));
            parseBuffer(conn);
            if (static_cast<std::size_t>(got) < sizeof buf)
                return; // Short read: the socket is drained.
            continue;
        }
        if (got < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return;
        }
        // EOF or a hard read error. Inside a frame it means the peer
        // died mid-frame (truncated); between frames it is a clean
        // close — exactly the blocking readFrame() distinction.
        const bool mid_frame =
            c.discardLeft > 0 || c.inBuf.size() - c.inOff > 0;
        if (mid_frame) {
            if (events.onTruncated)
                events.onTruncated();
            util::debug("conn", c.id,
                        ": truncated frame; closing connection");
        } else {
            util::debug("conn", c.id, ": closed by peer");
        }
        closeConn(conn);
        return;
    }
}

void
ConnLayer::loop()
{
    util::setLogThreadTag("event");
    util::inform(config.name, ": event loop on ", config.host, ":",
                 boundPort, " (max ", config.maxConnections,
                 " connections)");
    bool accepting = true;
    const auto drain_deadline_of = [this] {
        return std::chrono::steady_clock::now() +
               std::chrono::milliseconds(config.drainTimeoutMs);
    };
    std::chrono::steady_clock::time_point drain_deadline{};
    bool drain_armed = false;

    std::vector<epoll_event> ready(256);
    while (true) {
        if (accepting && acceptStopped.load()) {
            ::epoll_ctl(epollFd, EPOLL_CTL_DEL, listenFd, nullptr);
            accepting = false;
        }
        if (draining.load() && !drain_armed) {
            drain_armed = true;
            drain_deadline = drain_deadline_of();
        }
        if (drain_armed) {
            // Exit once every connection's output is flushed (or the
            // deadline lapses: a peer that stopped reading must not
            // hang the drain).
            bool pending = false;
            for (auto &[fd, conn] : conns) {
                std::lock_guard lock(conn->writeMutex);
                if (conn->outOff < conn->outBuf.size()) {
                    pending = true;
                    break;
                }
            }
            if (!pending ||
                std::chrono::steady_clock::now() >= drain_deadline)
                break;
        }
        const int timeout = drain_armed ? 10 : -1;
        const int n = ::epoll_wait(epollFd, ready.data(),
                                   static_cast<int>(ready.size()),
                                   timeout);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            util::warn(config.name, ": epoll_wait(): ",
                       std::strerror(errno));
            break;
        }
        for (int i = 0; i < n; ++i) {
            const int fd = ready[i].data.fd;
            const auto flags = ready[i].events;
            if (fd == wakeFd) {
                std::uint64_t drainv;
                while (::read(wakeFd, &drainv, sizeof drainv) > 0) {
                }
                continue;
            }
            if (fd == listenFd) {
                acceptReady();
                continue;
            }
            const auto it = conns.find(fd);
            if (it == conns.end())
                continue; // Closed earlier in this wakeup batch.
            ConnPtr conn = it->second;
            if (flags & EPOLLOUT) {
                std::unique_lock lock(conn->writeMutex);
                if (!flushLocked(*conn)) {
                    lock.unlock();
                    closeConn(conn);
                    continue;
                }
                const bool backlogged =
                    conn->outOff < conn->outBuf.size();
                if (backlogged != conn->wantWrite) {
                    conn->wantWrite = backlogged;
                    updateInterest(*conn);
                }
            }
            if (flags & (EPOLLIN | EPOLLHUP | EPOLLERR))
                readReady(conn);
        }
    }

    // Shut every remaining connection down.
    for (auto &[fd, conn] : conns) {
        std::lock_guard lock(conn->writeMutex);
        conn->open.store(false);
        ::shutdown(conn->fd, SHUT_RDWR);
    }
    conns.clear();
    liveConns.store(0);
}

} // namespace rhs::serve

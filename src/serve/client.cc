#include "serve/client.hh"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

#include "serve/protocol.hh"

namespace rhs::serve
{

bool
Client::connect(const std::string &host, unsigned short port,
                std::string *error)
{
    close();
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        if (error != nullptr)
            *error = std::string("socket(): ") + std::strerror(errno);
        return false;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        if (error != nullptr)
            *error = "bad host address: " + host;
        close();
        return false;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) != 0) {
        if (error != nullptr)
            *error = std::string("connect(): ") + std::strerror(errno);
        close();
        return false;
    }
    // Every frame is one small complete request/response; Nagle only
    // adds latency between the 4-byte length write and the body.
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    lastHost = host;
    lastPort = port;
    return true;
}

bool
Client::reconnect(std::string *error)
{
    if (lastHost.empty()) {
        if (error != nullptr)
            *error = "reconnect before any connect()";
        return false;
    }
    const unsigned tries =
        reconnectPolicy.attempts > 0 ? reconnectPolicy.attempts : 1;
    unsigned delay_ms = reconnectPolicy.backoffMs;
    for (unsigned attempt = 0; attempt < tries; ++attempt) {
        if (attempt > 0 && delay_ms > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(delay_ms));
            delay_ms *= 2;
        }
        if (connect(lastHost, lastPort, error))
            return true;
    }
    return false;
}

void
Client::close()
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

bool
Client::sendRaw(const std::string &body)
{
    return fd >= 0 && writeFrame(fd, body);
}

bool
Client::recvRaw(std::string &body)
{
    return fd >= 0 && readFrame(fd, body) == FrameStatus::Ok;
}

std::string
Client::callRaw(const std::string &body)
{
    std::string response;
    if (sendRaw(body) && recvRaw(response))
        return response;
    // Transport error — with one request outstanding the server never
    // answered it, so (ops being idempotent) redialing and resending
    // is exact. Each attempt redials from scratch: the old socket is
    // half-dead after an ECONNRESET/EPIPE.
    if (lastHost.empty())
        return {};
    unsigned delay_ms = reconnectPolicy.backoffMs;
    for (unsigned attempt = 0; attempt < reconnectPolicy.attempts;
         ++attempt) {
        if (attempt > 0) {
            if (delay_ms > 0)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(delay_ms));
            delay_ms *= 2;
        }
        close();
        if (!connect(lastHost, lastPort))
            continue;
        response.clear();
        if (sendRaw(body) && recvRaw(response))
            return response;
    }
    return {};
}

bool
Client::call(const report::Json &request, report::Json &response)
{
    const std::string reply = callRaw(serialize(request));
    if (reply.empty())
        return false;
    std::string parse_error;
    return report::Json::parse(reply, response, parse_error);
}

bool
Client::ping(std::int64_t id)
{
    auto request = report::Json::object();
    request.set("op", "ping");
    request.set("id", id);
    report::Json response;
    if (!call(request, response))
        return false;
    const auto *ok = response.find("ok");
    if (ok == nullptr || !ok->asBool())
        return false;
    return response.at("result").at("protocol").asString() == kProtocol;
}

report::Json
Client::stats(std::int64_t id)
{
    auto request = report::Json::object();
    request.set("op", "stats");
    request.set("id", id);
    report::Json response;
    if (!call(request, response))
        return {};
    const auto *result = response.find("result");
    return result != nullptr ? *result : report::Json();
}

bool
Client::shutdownServer(std::int64_t id)
{
    auto request = report::Json::object();
    request.set("op", "shutdown");
    request.set("id", id);
    report::Json response;
    if (!call(request, response))
        return false;
    const auto *ok = response.find("ok");
    return ok != nullptr && ok->asBool();
}

} // namespace rhs::serve

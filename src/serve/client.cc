#include "serve/client.hh"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "serve/protocol.hh"

namespace rhs::serve
{

bool
Client::connect(const std::string &host, unsigned short port,
                std::string *error)
{
    close();
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        if (error != nullptr)
            *error = std::string("socket(): ") + std::strerror(errno);
        return false;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        if (error != nullptr)
            *error = "bad host address: " + host;
        close();
        return false;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) != 0) {
        if (error != nullptr)
            *error = std::string("connect(): ") + std::strerror(errno);
        close();
        return false;
    }
    return true;
}

void
Client::close()
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

bool
Client::sendRaw(const std::string &body)
{
    return fd >= 0 && writeFrame(fd, body);
}

bool
Client::recvRaw(std::string &body)
{
    return fd >= 0 && readFrame(fd, body) == FrameStatus::Ok;
}

std::string
Client::callRaw(const std::string &body)
{
    if (!sendRaw(body))
        return {};
    std::string response;
    if (!recvRaw(response))
        return {};
    return response;
}

bool
Client::call(const report::Json &request, report::Json &response)
{
    const std::string reply = callRaw(serialize(request));
    if (reply.empty())
        return false;
    std::string parse_error;
    return report::Json::parse(reply, response, parse_error);
}

bool
Client::ping(std::int64_t id)
{
    auto request = report::Json::object();
    request.set("op", "ping");
    request.set("id", id);
    report::Json response;
    if (!call(request, response))
        return false;
    const auto *ok = response.find("ok");
    if (ok == nullptr || !ok->asBool())
        return false;
    return response.at("result").at("protocol").asString() == kProtocol;
}

report::Json
Client::stats(std::int64_t id)
{
    auto request = report::Json::object();
    request.set("op", "stats");
    request.set("id", id);
    report::Json response;
    if (!call(request, response))
        return {};
    const auto *result = response.find("result");
    return result != nullptr ? *result : report::Json();
}

bool
Client::shutdownServer(std::int64_t id)
{
    auto request = report::Json::object();
    request.set("op", "shutdown");
    request.set("id", id);
    report::Json response;
    if (!call(request, response))
        return false;
    const auto *ok = response.find("ok");
    return ok != nullptr && ok->asBool();
}

} // namespace rhs::serve

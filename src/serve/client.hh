/**
 * @file
 * serve::Client — the rhs-rpc/1 client library.
 *
 * A Client is one blocking TCP connection. `call` is the simple
 * one-outstanding-request form; `sendRaw`/`recvRaw` expose the frame
 * stream directly for pipelining (many requests in flight on one
 * connection, responses matched by id). Not thread-safe: one Client
 * per thread, which is how the load generator uses it.
 *
 * With a ReconnectPolicy set, `call`/`callRaw` survive a server
 * restart: on a transport error (ECONNRESET/EPIPE/closed socket) the
 * client re-dials the remembered endpoint with doubling backoff and
 * resends the request. That is only sound because every rhs-rpc/1
 * query op is idempotent — re-executing one yields the identical
 * response bytes — so the retry is invisible to the caller. The
 * pipelined sendRaw/recvRaw path never retries implicitly: with many
 * requests in flight the caller alone knows which ones are
 * unanswered (route::Router does exactly that bookkeeping).
 */

#ifndef RHS_SERVE_CLIENT_HH
#define RHS_SERVE_CLIENT_HH

#include <cstdint>
#include <string>

#include "report/json.hh"

namespace rhs::serve
{

/** Bounded retry-on-disconnect for idempotent calls (see Client). */
struct ReconnectPolicy
{
    unsigned attempts = 0;  //!< Redial attempts per call; 0 = off.
    unsigned backoffMs = 50; //!< First retry delay; doubles per try.
};

/** One rhs-rpc/1 connection. */
class Client
{
  public:
    Client() = default;
    ~Client() { close(); }

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /**
     * Connect to a server.
     * @return false with `error` filled on failure.
     */
    bool connect(const std::string &host, unsigned short port,
                 std::string *error = nullptr);

    bool connected() const { return fd >= 0; }
    void close();

    /** Enable (attempts > 0) or disable call()/callRaw() retries. */
    void setReconnect(ReconnectPolicy policy) { reconnectPolicy = policy; }

    /**
     * Redial the endpoint remembered by the last connect(), honoring
     * the policy's attempts/backoff schedule (one immediate try when
     * no policy is set). False when every attempt fails.
     */
    bool reconnect(std::string *error = nullptr);

    /**
     * Send one request and wait for its response.
     * @return false on a transport error (response left null).
     */
    bool call(const report::Json &request, report::Json &response);

    /**
     * Raw form of call(): send `body` as one frame, return the
     * response frame's bytes verbatim (empty on transport error).
     * This is what the load generator byte-compares against
     * QueryEngine::executeRaw.
     */
    std::string callRaw(const std::string &body);

    /** Write one request frame without waiting (pipelining). */
    bool sendRaw(const std::string &body);

    /** Read one response frame (pipelining). */
    bool recvRaw(std::string &body);

    // --- Conveniences over call() -----------------------------------
    /** True when the server answers ping with the known protocol. */
    bool ping(std::int64_t id = 0);

    /** The server's stats payload (null on failure). */
    report::Json stats(std::int64_t id = 0);

    /** Ask the server to drain and stop; true when acknowledged. */
    bool shutdownServer(std::int64_t id = 0);

  private:
    int fd = -1;
    std::string lastHost;
    unsigned short lastPort = 0;
    ReconnectPolicy reconnectPolicy;
};

} // namespace rhs::serve

#endif // RHS_SERVE_CLIENT_HH

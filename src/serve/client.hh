/**
 * @file
 * serve::Client — the rhs-rpc/1 client library.
 *
 * A Client is one blocking TCP connection. `call` is the simple
 * one-outstanding-request form; `sendRaw`/`recvRaw` expose the frame
 * stream directly for pipelining (many requests in flight on one
 * connection, responses matched by id). Not thread-safe: one Client
 * per thread, which is how the load generator uses it.
 */

#ifndef RHS_SERVE_CLIENT_HH
#define RHS_SERVE_CLIENT_HH

#include <cstdint>
#include <string>

#include "report/json.hh"

namespace rhs::serve
{

/** One rhs-rpc/1 connection. */
class Client
{
  public:
    Client() = default;
    ~Client() { close(); }

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /**
     * Connect to a server.
     * @return false with `error` filled on failure.
     */
    bool connect(const std::string &host, unsigned short port,
                 std::string *error = nullptr);

    bool connected() const { return fd >= 0; }
    void close();

    /**
     * Send one request and wait for its response.
     * @return false on a transport error (response left null).
     */
    bool call(const report::Json &request, report::Json &response);

    /**
     * Raw form of call(): send `body` as one frame, return the
     * response frame's bytes verbatim (empty on transport error).
     * This is what the load generator byte-compares against
     * QueryEngine::executeRaw.
     */
    std::string callRaw(const std::string &body);

    /** Write one request frame without waiting (pipelining). */
    bool sendRaw(const std::string &body);

    /** Read one response frame (pipelining). */
    bool recvRaw(std::string &body);

    // --- Conveniences over call() -----------------------------------
    /** True when the server answers ping with the known protocol. */
    bool ping(std::int64_t id = 0);

    /** The server's stats payload (null on failure). */
    report::Json stats(std::int64_t id = 0);

    /** Ask the server to drain and stop; true when acknowledged. */
    bool shutdownServer(std::int64_t id = 0);

  private:
    int fd = -1;
};

} // namespace rhs::serve

#endif // RHS_SERVE_CLIENT_HH

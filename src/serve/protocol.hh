/**
 * @file
 * The `rhs-rpc/1` wire protocol of the characterization query service.
 *
 * A connection carries a stream of frames in both directions. One
 * frame is a 4-byte big-endian payload length followed by that many
 * bytes of UTF-8 JSON (the report::Json model, serialized by
 * report::JsonWriter so responses are byte-stable across runs).
 *
 * Requests are objects with at least {"op": string, "id": int};
 * operation parameters ride alongside. Responses echo the id:
 *
 *   {"id": 7, "ok": true,  "result": {...}}
 *   {"id": 7, "ok": false, "error": "overloaded", "message": "..."}
 *
 * Protocol-level failures that occur before an id can be read
 * (malformed JSON, empty body, oversize frame) are answered with
 * id -1. Framing errors never tear the connection down: an oversize
 * frame's declared payload is consumed and discarded so the stream
 * stays synchronized, and the next frame is processed normally. Only
 * a truncated frame (the peer died mid-frame) ends the connection.
 *
 * Error codes, fixed by the protocol:
 *   bad_request        malformed frame body or invalid parameters
 *   frame_too_large    declared payload exceeds kMaxFrameBytes
 *   unknown_op         the op is not served
 *   overloaded         the bounded request queue is full (backpressure)
 *   deadline_exceeded  the request's deadline lapsed before execution
 *   shutting_down      the server is draining and accepts no new work
 *   internal           unexpected server-side failure
 */

#ifndef RHS_SERVE_PROTOCOL_HH
#define RHS_SERVE_PROTOCOL_HH

#include <array>
#include <cstdint>
#include <string>

#include "report/json.hh"

namespace rhs::serve
{

/** Protocol revision announced by ping and documented in USAGE.md. */
inline constexpr const char *kProtocol = "rhs-rpc/1";

/** Hard cap on one frame's payload. */
inline constexpr std::size_t kMaxFrameBytes = 1u << 20;

/** Response id used when the request's own id could not be read. */
inline constexpr std::int64_t kNoRequestId = -1;

/** Default and hard cap for the `trace_pull` op's max_spans
 *  parameter — sized so a span list always fits one response frame
 *  (kMaxFrameBytes) with room to spare. */
inline constexpr std::size_t kDefaultPullSpans = 2048;
inline constexpr std::size_t kMaxPullSpans = 4096;

namespace err
{
inline constexpr const char *kBadRequest = "bad_request";
inline constexpr const char *kFrameTooLarge = "frame_too_large";
inline constexpr const char *kUnknownOp = "unknown_op";
inline constexpr const char *kOverloaded = "overloaded";
inline constexpr const char *kDeadlineExceeded = "deadline_exceeded";
inline constexpr const char *kShuttingDown = "shutting_down";
inline constexpr const char *kInternal = "internal";
} // namespace err

/** Encode a frame length as the 4-byte big-endian prefix. */
std::array<unsigned char, 4> encodeLength(std::uint32_t length);

/** Decode the 4-byte big-endian prefix. */
std::uint32_t decodeLength(const unsigned char *prefix);

/** A complete frame (prefix + payload) ready to write to a socket. */
std::string encodeFrame(const std::string &body);

/** Outcome of reading one frame from a socket. */
enum class FrameStatus
{
    Ok,        //!< `body` holds the payload (possibly empty).
    Closed,    //!< Clean end of stream between frames.
    Truncated, //!< End of stream inside a frame: the peer died.
    Oversize,  //!< Declared payload > max; it was consumed and dropped.
};

/**
 * Read one frame from a blocking socket.
 *
 * Oversize frames are drained byte for byte so the stream stays
 * framed; the caller should answer with err::kFrameTooLarge and keep
 * reading. Retries EINTR; any other read error reports Truncated.
 */
FrameStatus readFrame(int fd, std::string &body,
                      std::size_t max_bytes = kMaxFrameBytes);

/**
 * Write one complete frame to a blocking socket (MSG_NOSIGNAL, so a
 * dead peer yields `false`, not SIGPIPE).
 */
bool writeFrame(int fd, const std::string &body);

/**
 * The parsed optional `trace` request member (PR 10):
 *
 *   "trace": {"id": "<1..32 hex chars>", "parent": <span id>}
 *
 * Clients (or an upstream router) attach it to join a request to a
 * distributed trace; peers that predate it ignore unknown members, so
 * the field is compatible in both directions. It never appears in
 * responses — reply bytes are identical with and without it, which
 * preserves every byte-identity contract.
 */
struct TraceField
{
    bool present = false;  //!< A valid `trace` member was attached.
    std::uint64_t hi = 0;  //!< Trace id, high 64 bits.
    std::uint64_t lo = 0;  //!< Trace id, low 64 bits.
    std::uint64_t parent = 0; //!< Parent span id (0 = root).
};

/**
 * Validate and parse the optional `trace` member of a request.
 * Returns false with `message` set (the exact bad_request message
 * bytes — shared by serve::Server and route::Router so a router is
 * indistinguishable from a shard) when the member is present but
 * malformed: not an object, a missing/overlong/non-hex id, or a
 * negative parent. Absent member: true with out.present == false.
 */
bool parseTraceField(const report::Json &request, TraceField &out,
                     std::string &message);

/** Build a success response envelope. */
report::Json makeResult(std::int64_t id, report::Json result);

/** Build an error response envelope. */
report::Json makeError(std::int64_t id, const std::string &code,
                       const std::string &message);

/**
 * Serialize a response exactly as the server writes it (the
 * report::JsonWriter form) — the byte-identity contract the load
 * generator checks against direct engine calls.
 */
std::string serialize(const report::Json &value);

/** True when `response` is an error carrying `code`. */
bool isError(const report::Json &response, const std::string &code);

} // namespace rhs::serve

#endif // RHS_SERVE_PROTOCOL_HH

/**
 * @file
 * `rhs-serve`: the batched characterization query server.
 *
 * One Server owns an event-driven connection layer (serve::ConnLayer —
 * a single epoll thread holding every connection) and one dispatcher
 * thread in front of a QueryEngine:
 *
 *   event   --> bounded request queue --> dispatcher --> ThreadPool
 *   thread      (backpressure)            (batching)     (rowEval)
 *
 * The event thread reassembles rhs-rpc/1 frames (however the bytes
 * arrive) and answers the cheap control ops (ping/stats/shutdown)
 * inline; engine ops are enqueued. The dispatcher coalesces whatever
 * is queued — up to `batchMax` requests — into one batch and evaluates
 * it with util::parallelFor, so concurrent clients share one pass over
 * the engine's thread-safe caches instead of serializing on a
 * per-request lock. One shard holds thousands of idle connections
 * with exactly two threads of its own (the PR 4 design burned a
 * reader thread per connection).
 *
 * Robustness invariants (tested in tests/serve_test.cc):
 *  - the request queue is bounded; when full the request is answered
 *    with an `overloaded` error immediately — never silently dropped;
 *  - a request's `deadline_ms` budget is checked when its batch starts
 *    executing; lapsed requests get `deadline_exceeded`, not a stale
 *    result;
 *  - malformed frames (empty body, bad JSON, oversize payload) are
 *    answered with an error on the same connection, which stays up;
 *    only a truncated frame (dead peer) ends a connection;
 *  - stop() drains: every queued request is answered before the
 *    sockets shut down, and `shutting_down` is returned for work
 *    arriving during the drain.
 */

#ifndef RHS_SERVE_SERVER_HH
#define RHS_SERVE_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hh"
#include "obs/slow_log.hh"
#include "obs/trace.hh"
#include "report/json.hh"
#include "serve/conn_layer.hh"
#include "serve/query_engine.hh"

namespace rhs::serve
{

/** Server tunables; defaults fit the load-generator scenarios. */
struct ServerConfig
{
    std::string host = "127.0.0.1"; //!< Loopback only by default.
    unsigned short port = 0;        //!< 0 = ephemeral (see port()).
    unsigned queueCapacity = 256;   //!< Bounded request queue.
    unsigned batchMax = 16;         //!< Max requests per batch.
    unsigned maxConnections = 128;  //!< Accept cap (and listen backlog).
    //! Artificial stall before each batch executes (test hook: makes
    //! the backpressure and deadline paths deterministic to exercise).
    unsigned serviceDelayUs = 0;
    //! Slow-request exemplar threshold in milliseconds (`--slow-ms`);
    //! requests slower end to end than this are recorded in the
    //! bounded slow log surfaced by the stats op. 0 disables.
    double slowMs = 0.0;
    //! Snapshot / spill tiers for the engine (see src/snap).
    QueryEngine::EngineOptions engine;
};

/** Monotonic counter snapshot returned by stats(). */
struct ServerStats
{
    std::uint64_t connectionsAccepted = 0;
    std::uint64_t connectionsRejected = 0; //!< Over maxConnections.
    std::uint64_t requestsEnqueued = 0;    //!< Engine ops accepted.
    std::uint64_t responsesSent = 0;       //!< Batch responses written.
    std::uint64_t inlineReplies = 0;       //!< ping/stats/errors/... .
    std::uint64_t batches = 0;
    std::uint64_t maxBatch = 0;
    std::uint64_t overloaded = 0;      //!< Backpressure replies.
    std::uint64_t deadlineExpired = 0; //!< deadline_exceeded replies.
    std::uint64_t malformedFrames = 0; //!< Rejected without teardown.
};

/** The epoll-based rhs-rpc/1 TCP server. */
class Server
{
  public:
    explicit Server(ServerConfig config = {});
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind, listen, and spawn the event/dispatch threads.
     * RHS_FATAL on socket setup errors (address in use, bad host).
     */
    void start();

    /** The bound port (the ephemeral choice when config.port == 0). */
    unsigned short port() const;

    /**
     * Ask the server to stop (idempotent, callable from any server
     * thread — the shutdown op and the SIGTERM watcher use it). The
     * actual drain happens in stop().
     */
    void requestStop();

    bool stopRequested() const { return stopping.load(); }

    /** Block until requestStop() is called (the rhs-serve main loop). */
    void waitForStopRequest();

    /**
     * Drain and join: stop accepting, answer everything queued, flush
     * and shut the connections down, join all threads. Idempotent.
     */
    void stop();

    ServerStats stats() const;

    /**
     * The stats op's payload: the legacy counter fields (byte-stable
     * names, order, and meaning), followed by a "metrics" object with
     * the full per-server and process-wide registry snapshots
     * (histograms included).
     */
    report::Json statsJson() const;

    /**
     * The `trace_pull` op's payload: this process's retained spans
     * ({node, epoch_unix_us, compiled, recorded, dropped, truncated,
     * spans}), drained — the rings are cleared after the snapshot so
     * two pulls never double-report a span. `max_spans` caps the
     * emitted list (newest kept) to keep the reply inside one frame.
     */
    report::Json tracePullJson(std::size_t max_spans) const;

    /** This server's metric registry (per-instance, so two servers in
     *  one process — the loadgen scenarios — never mix counts). */
    const obs::Registry &metricsRegistry() const { return registry_; }

    /** Live connections held by the event loop (tests/loadgen). */
    std::size_t connectionCount() const;

  private:
    using Clock = std::chrono::steady_clock;
    using ConnPtr = ConnLayer::ConnPtr;

    /** One queued engine request. */
    struct Pending
    {
        ConnPtr conn;
        std::int64_t id = -1;
        report::Json body;
        Clock::time_point deadline = Clock::time_point::max();
        //! Enqueue instant for the latency_ms histogram; only stamped
        //! while obs::timingActive() (min() otherwise = not recorded).
        Clock::time_point enqueuedAt = Clock::time_point::min();
        //! The request's distributed trace context (zeros when the
        //! client attached no `trace` member) and the enqueue instant
        //! in trace time — both stamped only while timingActive().
        obs::TraceContext ctx;
        std::uint64_t queueBeginUs = 0;
    };

    void dispatchLoop();
    void handleFrame(const ConnPtr &conn, const std::string &body);
    /** Serialize + frame + hand to the connection layer. */
    bool send(const ConnPtr &conn, const report::Json &response);

    ServerConfig config;
    QueryEngine engine;
    std::unique_ptr<ConnLayer> connLayer;
    std::string nodeName_; //!< "serve:<port>", set at start().
    obs::SlowLog slowLog_;

    std::atomic<bool> stopping{false};
    bool stopped = false; //!< stop() completed (guarded by stopMutex).
    std::mutex stopMutex;
    std::condition_variable stopCv;

    std::mutex queueMutex;
    std::condition_variable queueCv;
    std::deque<Pending> queue;

    std::thread dispatchThread;

    // Per-server metrics (see ServerStats). The registry is declared
    // before the references it hands out; Counter increments are
    // striped, wait-free, and seq_cst, which is what makes stats()'s
    // documented read order torn-read-free.
    obs::Registry registry_;
    obs::Counter &nConnections{registry_.counter("connections_accepted")};
    obs::Counter &nRejected{registry_.counter("connections_rejected")};
    obs::Counter &nEnqueued{registry_.counter("requests_enqueued")};
    obs::Counter &nResponses{registry_.counter("responses_sent")};
    obs::Counter &nInline{registry_.counter("inline_replies")};
    obs::Counter &nBatches{registry_.counter("batches")};
    obs::Counter &nOverloaded{registry_.counter("overloaded")};
    obs::Counter &nDeadline{registry_.counter("deadline_expired")};
    obs::Counter &nMalformed{registry_.counter("malformed_frames")};
    obs::Gauge &nMaxBatch{registry_.gauge("max_batch")};
    obs::Gauge &queueDepth{registry_.gauge("queue_depth")};
    //! Requests coalesced per dispatch (1, 2, 4, ... overflow >1024).
    obs::Histogram &batchSizeHist{registry_.histogram(
        "batch_size", obs::exponentialBounds(1.0, 2.0, 11))};
    //! Enqueue-to-response-write latency; only recorded while
    //! obs::timingActive() (shared bucket layout with serve_loadgen).
    obs::Histogram &latencyHist{
        registry_.histogram("latency_ms", obs::latencyBoundsMs())};
};

} // namespace rhs::serve

#endif // RHS_SERVE_SERVER_HH

#include "serve/protocol.hh"

#include <algorithm>
#include <cerrno>
#include <sys/socket.h>

#include "obs/trace.hh"
#include "report/writer.hh"

namespace rhs::serve
{

namespace
{

/**
 * Read exactly `count` bytes into `out` (may be null to discard).
 * @return bytes read before the stream ended; count on full success.
 */
std::size_t
readExact(int fd, char *out, std::size_t count)
{
    std::size_t done = 0;
    char discard[4096];
    while (done < count) {
        char *dst = out != nullptr ? out + done : discard;
        const std::size_t want =
            out != nullptr ? count - done
                           : std::min(count - done, sizeof discard);
        const ssize_t got = ::recv(fd, dst, want, 0);
        if (got < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (got == 0)
            break;
        done += static_cast<std::size_t>(got);
    }
    return done;
}

} // namespace

std::array<unsigned char, 4>
encodeLength(std::uint32_t length)
{
    return {static_cast<unsigned char>(length >> 24),
            static_cast<unsigned char>(length >> 16),
            static_cast<unsigned char>(length >> 8),
            static_cast<unsigned char>(length)};
}

std::uint32_t
decodeLength(const unsigned char *prefix)
{
    return (static_cast<std::uint32_t>(prefix[0]) << 24) |
           (static_cast<std::uint32_t>(prefix[1]) << 16) |
           (static_cast<std::uint32_t>(prefix[2]) << 8) |
           static_cast<std::uint32_t>(prefix[3]);
}

std::string
encodeFrame(const std::string &body)
{
    const auto prefix =
        encodeLength(static_cast<std::uint32_t>(body.size()));
    std::string frame(reinterpret_cast<const char *>(prefix.data()),
                      prefix.size());
    frame += body;
    return frame;
}

FrameStatus
readFrame(int fd, std::string &body, std::size_t max_bytes)
{
    body.clear();
    unsigned char prefix[4];
    const std::size_t got =
        readExact(fd, reinterpret_cast<char *>(prefix), sizeof prefix);
    if (got == 0)
        return FrameStatus::Closed;
    if (got < sizeof prefix)
        return FrameStatus::Truncated;

    const std::uint32_t length = decodeLength(prefix);
    if (length > max_bytes) {
        // Drain the declared payload so the next frame stays aligned.
        if (readExact(fd, nullptr, length) < length)
            return FrameStatus::Truncated;
        return FrameStatus::Oversize;
    }
    body.resize(length);
    if (length > 0 && readExact(fd, body.data(), length) < length)
        return FrameStatus::Truncated;
    return FrameStatus::Ok;
}

bool
writeFrame(int fd, const std::string &body)
{
    const std::string frame = encodeFrame(body);
    std::size_t done = 0;
    while (done < frame.size()) {
        const ssize_t sent = ::send(fd, frame.data() + done,
                                    frame.size() - done, MSG_NOSIGNAL);
        if (sent < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        done += static_cast<std::size_t>(sent);
    }
    return true;
}

bool
parseTraceField(const report::Json &request, TraceField &out,
                std::string &message)
{
    out = TraceField{};
    if (request.type() != report::Json::Type::Object)
        return true;
    const auto *trace = request.find("trace");
    if (trace == nullptr)
        return true;
    if (trace->type() != report::Json::Type::Object) {
        message = "'trace' must be an object";
        return false;
    }
    const auto *id = trace->find("id");
    if (id == nullptr || id->type() != report::Json::Type::String ||
        !obs::traceIdFromHex(id->asString(), out.hi, out.lo)) {
        message = "'trace' needs a string 'id' of 1..32 hex "
                  "characters";
        return false;
    }
    if (const auto *parent = trace->find("parent");
        parent != nullptr) {
        if (parent->type() != report::Json::Type::Int ||
            parent->asInt() < 0) {
            message = "'trace.parent' must be a non-negative integer";
            return false;
        }
        out.parent = static_cast<std::uint64_t>(parent->asInt());
    }
    out.present = true;
    return true;
}

report::Json
makeResult(std::int64_t id, report::Json result)
{
    auto response = report::Json::object();
    response.set("id", id);
    response.set("ok", true);
    response.set("result", std::move(result));
    return response;
}

report::Json
makeError(std::int64_t id, const std::string &code,
          const std::string &message)
{
    auto response = report::Json::object();
    response.set("id", id);
    response.set("ok", false);
    response.set("error", code);
    response.set("message", message);
    return response;
}

std::string
serialize(const report::Json &value)
{
    return report::JsonWriter().toString(value);
}

bool
isError(const report::Json &response, const std::string &code)
{
    if (response.type() != report::Json::Type::Object)
        return false;
    const auto *ok = response.find("ok");
    const auto *error = response.find("error");
    return ok != nullptr && !ok->asBool() && error != nullptr &&
           error->asString() == code;
}

} // namespace rhs::serve

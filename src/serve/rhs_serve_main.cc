/**
 * @file
 * `rhs-serve` — the standalone characterization query server.
 *
 *   rhs-serve [--host H] [--port P] [--queue N] [--batch N]
 *             [--max-conns N] [--jobs N] [--log LEVEL]
 *             [--simd scalar|avx2|avx512|neon|auto] [--seed N]
 *
 * --simd pins the row-evaluation kernel variant before the server
 * starts (overrides the RHS_SIMD environment variable; default: best
 * the CPU supports). The resolved variant appears in the `stats`
 * snapshot as the roweval.simd.variant gauge/info metric.
 *
 * --port 0 (the default) binds an ephemeral port; the bound port is
 * announced on stderr ("listening on ..."), which is how scripted
 * clients discover it. The server runs until SIGTERM/SIGINT or an
 * rhs-rpc/1 `shutdown` request, then drains: every queued request is
 * answered before the process exits 0.
 */

#include <atomic>
#include <csignal>
#include <cstdio>
#include <thread>
#include <unistd.h>

#include "obs/export.hh"
#include "obs/metrics.hh"
#include "report/writer.hh"
#include "rhmodel/kernel.hh"
#include "serve/server.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"
#include "util/version.hh"

namespace
{

using namespace rhs;

// Self-pipe: the signal handler may only touch async-signal-safe
// calls, so it writes one byte and a watcher thread does the rest.
int signalPipe[2] = {-1, -1};

void
onSignal(int)
{
    const char byte = 1;
    [[maybe_unused]] const auto ignored =
        ::write(signalPipe[1], &byte, 1);
}

} // namespace

int
main(int argc, char **argv)
{
    const util::Cli cli(argc, argv,
                        {"host", "port", "queue", "batch", "max-conns",
                         "jobs", "log", "trace-out", "simd",
                         "snapshot-in", "spill-file", "spill-max-mb",
                         "seed", "slow-ms", "port-file", "help"});
    if (cli.has("help")) {
        std::printf(
            "usage: rhs-serve [--host H] [--port P] [--queue N] "
            "[--batch N]\n"
            "                 [--max-conns N] [--jobs N] "
            "[--log silent|warn|info|debug]\n"
            "                 [--trace-out FILE]  "
            "[--simd scalar|avx2|avx512|neon|auto]\n"
            "                 [--snapshot-in FILE] [--spill-file FILE] "
            "[--spill-max-mb N]\n"
            "--trace-out writes the retained obs spans as a Chrome\n"
            "trace-event JSON file on shutdown (chrome://tracing).\n"
            "--simd pins the row-evaluation kernel variant (default:\n"
            "the RHS_SIMD environment variable, else the best the CPU\n"
            "supports); the choice shows up in the stats snapshot.\n"
            "                 [--seed N]\n"
            "--snapshot-in warm-starts the engine from an rhs-snap/1\n"
            "file written by rhs-bench --snapshot-out; an unreadable\n"
            "or mismatched snapshot logs one warning and the server\n"
            "computes live. --spill-file spills RowEval cache\n"
            "evictions to a bounded scratch file (default cap 256\n"
            "MiB; override with --spill-max-mb).\n"
            "--seed XORs a base seed into every fuzz_best search so\n"
            "two servers can diversify otherwise-identical requests;\n"
            "the default 0 serves request seeds verbatim.\n"
            "                 [--slow-ms MS] [--port-file FILE]\n"
            "--slow-ms records requests slower end to end than MS\n"
            "milliseconds in a bounded exemplar log surfaced by the\n"
            "stats op (0, the default, disables). --port-file writes\n"
            "the bound port to FILE once listening, so scripted\n"
            "parents can discover an ephemeral --port 0 choice.\n");
        return 0;
    }

    const std::string log = cli.get("log", "info");
    if (log == "silent")
        util::setLogLevel(util::LogLevel::Silent);
    else if (log == "warn")
        util::setLogLevel(util::LogLevel::Warn);
    else if (log == "debug")
        util::setLogLevel(util::LogLevel::Debug);
    else if (log != "info")
        RHS_FATAL("--log must be silent, warn, info, or debug");

    util::setLogThreadTag("main");
    util::ThreadPool::configure(
        static_cast<unsigned>(cli.getInt("jobs", 0)));
    if (const std::string simd = cli.get("simd", ""); !simd.empty()) {
        std::string error;
        if (!rhmodel::kern::setVariant(simd, &error))
            RHS_FATAL("--simd ", simd, ": ", error);
    } else {
        // Resolve (and log) the kernel choice now, not on the first
        // query: operators should see it next to "listening on ...".
        rhmodel::kern::active();
    }

    serve::ServerConfig config;
    config.host = cli.get("host", "127.0.0.1");
    config.port = static_cast<unsigned short>(cli.getInt("port", 0));
    config.queueCapacity =
        static_cast<unsigned>(cli.getInt("queue", 256));
    config.batchMax = static_cast<unsigned>(cli.getInt("batch", 16));
    config.maxConnections =
        static_cast<unsigned>(cli.getInt("max-conns", 128));
    config.engine.snapshotIn = cli.get("snapshot-in", "");
    config.engine.spillFile = cli.get("spill-file", "");
    config.engine.spillMaxBytes =
        static_cast<std::uint64_t>(cli.getInt("spill-max-mb", 256))
        << 20;
    config.engine.fuzzSeedBase =
        static_cast<std::uint64_t>(cli.getInt("seed", 0));
    config.slowMs = cli.getDouble("slow-ms", 0.0);
    if (config.slowMs < 0)
        RHS_FATAL("--slow-ms must be non-negative (0 disables)");

    obs::Registry::global().info("build.git").set(util::gitDescribe());

    serve::Server server(config);
    server.start();

    if (const std::string port_file = cli.get("port-file", "");
        !port_file.empty()) {
        // Written atomically (temp + rename) so a polling parent never
        // reads a half-written number.
        const std::string tmp = port_file + ".tmp";
        if (std::FILE *f = std::fopen(tmp.c_str(), "w")) {
            std::fprintf(f, "%u\n", unsigned(server.port()));
            std::fclose(f);
            if (std::rename(tmp.c_str(), port_file.c_str()) != 0)
                RHS_FATAL("rhs-serve: cannot rename ", tmp, " to ",
                          port_file);
        } else {
            RHS_FATAL("rhs-serve: cannot write --port-file ",
                      port_file);
        }
    }

    if (::pipe(signalPipe) != 0)
        RHS_FATAL("rhs-serve: pipe(): cannot set up signal handling");
    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);
    std::thread watcher([&server] {
        util::setLogThreadTag("signals");
        char byte;
        if (::read(signalPipe[0], &byte, 1) == 1) {
            util::inform("rhs-serve: signal received; draining");
            server.requestStop();
        }
    });

    server.waitForStopRequest();
    server.stop();

    // Wake the watcher if the stop came from a shutdown request.
    const char byte = 0;
    [[maybe_unused]] const auto ignored =
        ::write(signalPipe[1], &byte, 1);
    watcher.join();
    ::close(signalPipe[0]);
    ::close(signalPipe[1]);

    std::fprintf(stderr, "%s\n",
                 report::JsonWriter()
                     .toString(server.statsJson())
                     .c_str());
    if (const std::string trace_out = cli.get("trace-out", "");
        !trace_out.empty()) {
        obs::writeChromeTrace(trace_out);
        util::inform("rhs-serve: trace written to ", trace_out);
    }
    return 0;
}

/**
 * @file
 * Execution of rhs-rpc/1 characterization queries against the engine.
 *
 * The QueryEngine owns one exp::FleetCache and maps each query onto
 * the same Tester calls the experiments use, so a served result is the
 * direct-call result byte for byte (the load generator proves this by
 * running every request through a second, private QueryEngine and
 * comparing serialized responses).
 *
 * Thread safety: module construction is serialized behind a mutex
 * (FleetCache's maps are not concurrent); everything after the lookup
 * runs lock-free on the engine's own thread-safe caches, so a batch of
 * queries executes in parallel on the PR 2 rowEval kernel.
 *
 * Served operations (all parameters optional unless noted):
 *
 *   row_hcfirst    {mfr, module, bank, row*, temperature, t_agg_on,
 *                   t_agg_off, pattern, pattern_seed, trial}
 *                  -> {row, hcfirst}            (0 = not vulnerable)
 *   ber            {..., row*, hammers, trial}  -> {row, hammers, flips}
 *   worst_pattern  {..., rows*: [r...]}         -> {pattern, pattern_seed}
 *   profile_slice  {..., row0*, count*, trial}  -> {row0, hcfirst: [...]}
 *   fuzz_best      {..., seed*, row0*, count, population, generations,
 *                   slots, max_aggressors, deadline_ms}
 *                  -> {seed, best, best_activations, best_victim,
 *                      uniform_activations, generation_best,
 *                      evaluated, generations_completed,
 *                      budget_exhausted}
 *
 * fuzz_best runs the src/fuzz pattern search (victim anchors
 * [row0, row0+count)) and returns the strongest non-uniform pattern
 * found. `seed` is REQUIRED: a fuzz result is only meaningful relative
 * to an explicit seed, so seedless requests are rejected rather than
 * silently defaulting. With `deadline_ms` the search returns its
 * best-so-far and sets budget_exhausted instead of blowing the
 * deadline; without it the full generation budget always runs, which
 * is what makes served replies byte-identical to direct engine calls.
 */

#ifndef RHS_SERVE_QUERY_ENGINE_HH
#define RHS_SERVE_QUERY_ENGINE_HH

#include <cstdint>
#include <mutex>
#include <string>

#include "exp/fleet_cache.hh"
#include "report/json.hh"

namespace rhs::serve
{

/** Executes engine-backed rhs-rpc/1 operations. */
class QueryEngine
{
  public:
    /** Cap on a profile_slice's row count (one response frame). */
    static constexpr unsigned kMaxSliceRows = 512;
    /** Cap on a worst_pattern sample (each row scans 7 patterns). */
    static constexpr unsigned kMaxWcdpRows = 64;
    /** Caps on one fuzz_best search (population x generations x
     *  victims bounds the rowEval work a single request can demand). */
    static constexpr unsigned kMaxFuzzRows = 16;
    static constexpr unsigned kMaxFuzzPopulation = 64;
    static constexpr unsigned kMaxFuzzGenerations = 16;

    /**
     * Optional persistence tiers (see src/snap). All best-effort: a
     * snapshot that fails to open or a spill file that cannot be
     * created logs one warning and the engine serves everything from
     * live computation, exactly as with no options at all.
     */
    struct EngineOptions
    {
        std::string snapshotIn; //!< rhs-snap/1 file to warm-start from.
        std::string spillFile;  //!< RowEval eviction spill file.
        std::uint64_t spillMaxBytes = 256ull << 20;
        //! Base seed XOR-combined into every fuzz_best search seed
        //! (the rhs-serve --seed flag). 0, the default, leaves request
        //! seeds untouched — required for the loadgen byte-identity
        //! comparison, whose direct engine uses default options.
        std::uint64_t fuzzSeedBase = 0;
    };

    QueryEngine();
    explicit QueryEngine(const EngineOptions &options);

    /** True when `op` is executed here (vs served inline). */
    static bool isEngineOp(const std::string &op);

    /**
     * Execute one parsed request object; always returns a complete
     * response envelope (invalid parameters become bad_request).
     */
    report::Json execute(const report::Json &request);

    /**
     * Parse and execute a raw frame body; the serialized response.
     * This is the whole server data path minus the socket, which is
     * what the load generator compares against.
     */
    std::string executeRaw(const std::string &body);

  private:
    core::Tester &tester(rhmodel::Mfr mfr, unsigned module_index);

    std::mutex buildMutex; //!< Guards the FleetCache maps only.
    exp::FleetCache fleet;
    std::uint64_t fuzzSeedBase = 0;
};

} // namespace rhs::serve

#endif // RHS_SERVE_QUERY_ENGINE_HH

#include "serve/server.hh"

#include <cerrno>
#include <cstring>

#include "obs/export.hh"
#include "obs/trace.hh"
#include "serve/protocol.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace rhs::serve
{

Server::Server(ServerConfig config)
    : config(std::move(config)), engine(this->config.engine)
{
    RHS_ASSERT(this->config.queueCapacity > 0,
               "queueCapacity must be positive");
    RHS_ASSERT(this->config.batchMax > 0, "batchMax must be positive");
}

Server::~Server()
{
    stop();
}

unsigned short
Server::port() const
{
    return connLayer ? connLayer->port() : 0;
}

std::size_t
Server::connectionCount() const
{
    return connLayer ? connLayer->connectionCount() : 0;
}

void
Server::start()
{
    ConnLayerConfig net;
    net.host = config.host;
    net.port = config.port;
    net.maxConnections = config.maxConnections;
    net.name = "rhs-serve";

    ConnLayer::Events events;
    events.onFrame = [this](const ConnPtr &conn, std::string &&body) {
        handleFrame(conn, body);
    };
    events.onOversize = [this](const ConnPtr &conn) {
        nMalformed.add(1);
        nInline.add(1);
        send(conn, makeError(kNoRequestId, err::kFrameTooLarge,
                             "frame exceeds " +
                                 std::to_string(kMaxFrameBytes) +
                                 " bytes"));
    };
    events.onTruncated = [this] { nMalformed.add(1); };
    events.onAccepted = [this](unsigned) { nConnections.add(1); };
    events.onRejected = [this](int fd) {
        nRejected.add(1);
        writeFrame(fd, serialize(makeError(kNoRequestId,
                                           err::kOverloaded,
                                           "connection limit reached")));
    };

    connLayer = std::make_unique<ConnLayer>(net, std::move(events));
    connLayer->start();
    nodeName_ = "serve:" + std::to_string(connLayer->port());
    slowLog_.setThresholdMs(config.slowMs);
    util::inform("rhs-serve: listening on ", config.host, ":",
                 connLayer->port(), " (queue ", config.queueCapacity,
                 ", batch ", config.batchMax, ")");

    dispatchThread = std::thread([this] { dispatchLoop(); });
}

void
Server::requestStop()
{
    if (stopping.exchange(true))
        return;
    {
        std::lock_guard lock(stopMutex);
    }
    stopCv.notify_all();
    queueCv.notify_all();
    if (connLayer)
        connLayer->stopAccepting();
}

void
Server::waitForStopRequest()
{
    std::unique_lock lock(stopMutex);
    stopCv.wait(lock, [this] { return stopping.load(); });
}

void
Server::stop()
{
    requestStop();
    {
        std::lock_guard lock(stopMutex);
        if (stopped)
            return;
        stopped = true;
    }
    // The dispatcher drains every queued request before exiting, so
    // nothing accepted before the stop request goes unanswered. The
    // event thread keeps running underneath it to flush the replies.
    queueCv.notify_all();
    if (dispatchThread.joinable())
        dispatchThread.join();
    if (connLayer)
        connLayer->drainAndStop();
    util::inform("rhs-serve: stopped (", nResponses.value(),
                 " batch responses, ", nInline.value(),
                 " inline replies)");
}

bool
Server::send(const ConnPtr &conn, const report::Json &response)
{
    return connLayer->send(conn, serialize(response));
}

void
Server::handleFrame(const ConnPtr &conn, const std::string &body)
{
    if (body.empty()) {
        nMalformed.add(1);
        nInline.add(1);
        send(conn, makeError(kNoRequestId, err::kBadRequest,
                             "empty frame body"));
        return;
    }

    report::Json request;
    std::string parse_error;
    if (!report::Json::parse(body, request, parse_error)) {
        nMalformed.add(1);
        nInline.add(1);
        send(conn, makeError(kNoRequestId, err::kBadRequest,
                             "malformed JSON: " + parse_error));
        return;
    }

    std::int64_t id = kNoRequestId;
    if (request.type() == report::Json::Type::Object) {
        if (const auto *id_value = request.find("id");
            id_value != nullptr &&
            id_value->type() == report::Json::Type::Int)
            id = id_value->asInt();
    }
    const report::Json *op_value =
        request.type() == report::Json::Type::Object
            ? request.find("op")
            : nullptr;
    if (op_value == nullptr ||
        op_value->type() != report::Json::Type::String) {
        nInline.add(1);
        send(conn, makeError(id, err::kBadRequest,
                             "request needs a string 'op'"));
        return;
    }
    const std::string &op = op_value->asString();

    if (op == "ping") {
        auto result = report::Json::object();
        result.set("protocol", kProtocol);
        nInline.add(1);
        send(conn, makeResult(id, std::move(result)));
        return;
    }
    if (op == "stats") {
        nInline.add(1);
        send(conn, makeResult(id, statsJson()));
        return;
    }
    if (op == "trace_pull") {
        std::size_t max_spans = kDefaultPullSpans;
        if (const auto *value = request.find("max_spans");
            value != nullptr) {
            if (value->type() != report::Json::Type::Int ||
                value->asInt() < 0 ||
                value->asInt() >
                    static_cast<std::int64_t>(kMaxPullSpans)) {
                nInline.add(1);
                send(conn,
                     makeError(id, err::kBadRequest,
                               "'max_spans' must be an integer in "
                               "[0, " +
                                   std::to_string(kMaxPullSpans) +
                                   "]"));
                return;
            }
            max_spans = static_cast<std::size_t>(value->asInt());
        }
        nInline.add(1);
        send(conn, makeResult(id, tracePullJson(max_spans)));
        return;
    }
    if (op == "shutdown") {
        auto result = report::Json::object();
        result.set("draining", true);
        nInline.add(1);
        send(conn, makeResult(id, std::move(result)));
        util::inform("rhs-serve: shutdown requested by conn",
                     conn->id);
        requestStop();
        return;
    }
    if (!QueryEngine::isEngineOp(op)) {
        nInline.add(1);
        send(conn,
             makeError(id, err::kUnknownOp, "unknown op '" + op + "'"));
        return;
    }

    Pending pending;
    pending.conn = conn;
    pending.id = id;
    if (const auto *deadline = request.find("deadline_ms");
        deadline != nullptr) {
        if (deadline->type() != report::Json::Type::Int ||
            deadline->asInt() < 0) {
            nInline.add(1);
            send(conn,
                 makeError(id, err::kBadRequest,
                           "'deadline_ms' must be a non-negative "
                           "integer"));
            return;
        }
        if (deadline->asInt() > 0)
            pending.deadline =
                Clock::now() +
                std::chrono::milliseconds(deadline->asInt());
    }
    // The optional trace context is protocol surface: validated in
    // every build (garbage is rejected without tearing the
    // connection), recorded only while timing is active.
    TraceField trace;
    std::string trace_error;
    if (!parseTraceField(request, trace, trace_error)) {
        nInline.add(1);
        send(conn, makeError(id, err::kBadRequest, trace_error));
        return;
    }
    pending.body = std::move(request);
    if (obs::timingActive()) {
        pending.enqueuedAt = Clock::now();
        pending.queueBeginUs = obs::traceNowUs();
        pending.ctx.hi = trace.hi;
        pending.ctx.lo = trace.lo;
        pending.ctx.parent = trace.parent;
    }

    {
        // stopping and the queue are checked under one lock so a
        // request is either drained by the dispatcher or refused here
        // — never both missed (see dispatchLoop's exit condition).
        std::lock_guard lock(queueMutex);
        if (stopping.load()) {
            nInline.add(1);
            send(conn, makeError(id, err::kShuttingDown,
                                 "server is draining"));
            return;
        }
        if (queue.size() >= config.queueCapacity) {
            nOverloaded.add(1);
            nInline.add(1);
            send(conn, makeError(id, err::kOverloaded,
                                 "request queue is full (capacity " +
                                     std::to_string(
                                         config.queueCapacity) +
                                     ")"));
            return;
        }
        queue.push_back(std::move(pending));
        nEnqueued.add(1);
        queueDepth.set(static_cast<std::int64_t>(queue.size()));
    }
    queueCv.notify_one();
}

void
Server::dispatchLoop()
{
    util::setLogThreadTag("dispatch");
    std::vector<Pending> batch;
    while (true) {
        batch.clear();
        {
            std::unique_lock lock(queueMutex);
            queueCv.wait(lock, [this] {
                return !queue.empty() || stopping.load();
            });
            if (queue.empty() && stopping.load())
                return; // Fully drained.
            while (!queue.empty() && batch.size() < config.batchMax) {
                batch.push_back(std::move(queue.front()));
                queue.pop_front();
            }
            queueDepth.set(static_cast<std::int64_t>(queue.size()));
        }
        OBS_SPAN("serve.batch");
        nBatches.add(1);
        batchSizeHist.observe(static_cast<double>(batch.size()));
        nMaxBatch.recordMax(static_cast<std::int64_t>(batch.size()));
        if (config.serviceDelayUs > 0)
            std::this_thread::sleep_for(
                std::chrono::microseconds(config.serviceDelayUs));

        // Per-request queue-wait spans, recorded by this thread under
        // each request's own trace context (the queue interval is the
        // first hop a stitched fleet trace attributes).
        const bool timing = obs::timingActive();
        std::vector<std::pair<std::uint64_t, std::uint64_t>> execUs;
        if (timing) {
            execUs.assign(batch.size(), {0, 0});
            const std::uint64_t now_us = obs::traceNowUs();
            for (const Pending &pending : batch)
                if (pending.queueBeginUs != 0)
                    obs::recordSpanWith("serve.queue",
                                        pending.queueBeginUs, now_us,
                                        pending.ctx,
                                        obs::nextSpanId());
        }

        // One parallel pass over the whole batch: every query bottoms
        // out in the rowEval kernel, whose caches are thread-safe and
        // value-preserving, so concurrent evaluation cannot change any
        // response byte.
        const auto responses = util::ThreadPool::instance().parallelMap(
            batch.size(), [&](std::size_t i) -> report::Json {
                const Pending &pending = batch[i];
                if (Clock::now() > pending.deadline) {
                    nDeadline.add(1);
                    return makeError(pending.id,
                                     err::kDeadlineExceeded,
                                     "deadline lapsed before "
                                     "execution");
                }
                if (!timing)
                    return engine.execute(pending.body);
                // The request's context wraps execution so the exec
                // span — and every kernel span recorded beneath it —
                // chains into the caller's distributed trace.
                const std::uint64_t begin_us = obs::traceNowUs();
                obs::ContextScope scope(pending.ctx);
                report::Json response;
                {
                    obs::Span exec("serve.exec");
                    response = engine.execute(pending.body);
                }
                execUs[i] = {begin_us, obs::traceNowUs()};
                return response;
            });
        for (std::size_t i = 0; i < batch.size(); ++i) {
            send(batch[i].conn, responses[i]);
            nResponses.add(1);
            if (batch[i].enqueuedAt != Clock::time_point::min() &&
                timing) {
                const auto elapsed = std::chrono::duration<double,
                                                           std::milli>(
                    Clock::now() - batch[i].enqueuedAt);
                latencyHist.observe(elapsed.count());
                if (slowLog_.qualifies(elapsed.count())) {
                    obs::SlowLog::Entry entry;
                    const Pending &pending = batch[i];
                    if (const auto *op = pending.body.find("op");
                        op != nullptr &&
                        op->type() == report::Json::Type::String)
                        entry.op = op->asString();
                    entry.digest =
                        obs::paramsDigest(serialize(pending.body));
                    entry.totalMs = elapsed.count();
                    if (pending.ctx.valid())
                        entry.traceId = obs::traceIdToHex(
                            pending.ctx.hi, pending.ctx.lo);
                    if (pending.queueBeginUs != 0 &&
                        execUs[i].first != 0)
                        entry.hops.emplace_back(
                            "queue_ms",
                            static_cast<double>(execUs[i].first -
                                                pending.queueBeginUs) /
                                1000.0);
                    if (execUs[i].second != 0)
                        entry.hops.emplace_back(
                            "exec_ms",
                            static_cast<double>(execUs[i].second -
                                                execUs[i].first) /
                                1000.0);
                    slowLog_.record(std::move(entry));
                }
            }
        }
    }
}

ServerStats
Server::stats() const
{
    // Torn-read fix: counters are bumped without a common lock, so
    // the snapshot's only consistency tool is read order. A request's
    // lifecycle bumps nEnqueued, then nBatches, then nResponses — and
    // Counter ops are seq_cst — so reading *effects before causes*
    // (responses, then batches, then enqueued) guarantees
    // responsesSent <= requestsEnqueued and responsesSent <=
    // batches * batchMax in every snapshot. The old order (enqueued
    // first) could observe a response whose enqueue it had already
    // missed and report responses > enqueued.
    ServerStats out;
    out.responsesSent = nResponses.value();   // Effect ...
    out.batches = nBatches.value();           // ... its cause ...
    out.requestsEnqueued = nEnqueued.value(); // ... the first cause.
    out.deadlineExpired = nDeadline.value();
    out.overloaded = nOverloaded.value();
    out.malformedFrames = nMalformed.value();
    out.inlineReplies = nInline.value();
    out.connectionsRejected = nRejected.value();
    out.connectionsAccepted = nConnections.value();
    out.maxBatch = static_cast<std::uint64_t>(nMaxBatch.value());
    return out;
}

report::Json
Server::statsJson() const
{
    const ServerStats s = stats();
    auto json = report::Json::object();
    json.set("protocol", kProtocol);
    json.set("queue_capacity", config.queueCapacity);
    json.set("batch_max", config.batchMax);
    json.set("connections_accepted", s.connectionsAccepted);
    json.set("connections_rejected", s.connectionsRejected);
    json.set("requests_enqueued", s.requestsEnqueued);
    json.set("responses_sent", s.responsesSent);
    json.set("inline_replies", s.inlineReplies);
    json.set("batches", s.batches);
    json.set("max_batch", s.maxBatch);
    json.set("overloaded", s.overloaded);
    json.set("deadline_expired", s.deadlineExpired);
    json.set("malformed_frames", s.malformedFrames);
    // Trace-ring health (satellite of PR 10): recorded vs dropped
    // spans — a nonzero `dropped` means the ring wrapped and a
    // trace_pull came too late for the overwritten spans.
    auto trace = report::Json::object();
    trace.set("recorded", obs::traceRecorded());
    trace.set("dropped", obs::traceDropped());
    json.set("trace", std::move(trace));
    json.set("slow_log", slowLog_.toJson());
    // Full snapshots ride after the legacy fields so existing clients
    // (and tests) keep their byte-stable view: this server's registry
    // (queue/batch/latency histograms) plus the process-wide one (the
    // pool and the model caches behind the engine).
    auto metrics = report::Json::object();
    metrics.set("server", obs::registryJson(registry_));
    metrics.set("process",
                obs::registryJson(obs::Registry::global()));
    json.set("metrics", std::move(metrics));
    return json;
}

report::Json
Server::tracePullJson(std::size_t max_spans) const
{
    // Drain semantics: snapshot, emit, clear — so two pulls never
    // double-report a span. The counters are snapshotted before the
    // spans so `recorded` can only undercount relative to the list.
    const std::uint64_t recorded = obs::traceRecorded();
    const std::uint64_t dropped = obs::traceDropped();
    const auto spans = obs::traceSnapshot();
    bool truncated = false;
    auto json = report::Json::object();
    json.set("node", nodeName_);
    json.set("epoch_unix_us", obs::traceEpochUnixUs());
    json.set("compiled", obs::kCompiledIn);
    json.set("recorded", recorded);
    json.set("dropped", dropped);
    auto span_list = obs::spansJson(spans, max_spans, truncated);
    json.set("truncated", truncated);
    json.set("spans", std::move(span_list));
    obs::clearTrace();
    return json;
}

} // namespace rhs::serve

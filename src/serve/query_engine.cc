#include "serve/query_engine.hh"

#include <cstdint>
#include <limits>
#include <vector>

#include "core/tester.hh"
#include "fuzz/search.hh"
#include "obs/trace.hh"
#include "rhmodel/pattern.hh"
#include "serve/protocol.hh"
#include "snap/reader.hh"
#include "snap/spill.hh"
#include "snap/store.hh"
#include "util/logging.hh"

namespace rhs::serve
{

namespace
{

/** Thrown by the parameter accessors; becomes one bad_request reply. */
struct ParamError
{
    std::string message;
};

std::int64_t
requestId(const report::Json &request)
{
    if (request.type() != report::Json::Type::Object)
        return kNoRequestId;
    const auto *id = request.find("id");
    if (id == nullptr || id->type() != report::Json::Type::Int)
        return kNoRequestId;
    return id->asInt();
}

std::int64_t
requiredIntParam(const report::Json &request, const std::string &name,
                 std::int64_t min, std::int64_t max)
{
    const auto *value = request.find(name);
    if (value == nullptr)
        throw ParamError{"'" + name + "' is required"};
    if (value->type() != report::Json::Type::Int)
        throw ParamError{"'" + name + "' must be an integer"};
    const std::int64_t parsed = value->asInt();
    if (parsed < min || parsed > max)
        throw ParamError{"'" + name + "' out of range [" +
                         std::to_string(min) + ", " +
                         std::to_string(max) + "]"};
    return parsed;
}

std::int64_t
intParam(const report::Json &request, const std::string &name,
         std::int64_t fallback, std::int64_t min, std::int64_t max)
{
    if (request.find(name) == nullptr)
        return fallback;
    return requiredIntParam(request, name, min, max);
}

double
doubleParam(const report::Json &request, const std::string &name,
            double fallback, double min, double max)
{
    const auto *value = request.find(name);
    if (value == nullptr)
        return fallback;
    if (!value->isNumber())
        throw ParamError{"'" + name + "' must be a number"};
    const double parsed = value->asDouble();
    if (parsed < min || parsed > max)
        throw ParamError{"'" + name + "' out of range"};
    return parsed;
}

rhmodel::Mfr
mfrParam(const report::Json &request)
{
    const auto *value = request.find("mfr");
    if (value == nullptr)
        return rhmodel::Mfr::A;
    if (value->type() != report::Json::Type::String)
        throw ParamError{"'mfr' must be a string"};
    const std::string &name = value->asString();
    for (auto mfr : rhmodel::allMfrs)
        if (name.size() == 1 && name[0] == rhmodel::letterOf(mfr))
            return mfr;
    throw ParamError{"'mfr' must be one of A, B, C, D"};
}

rhmodel::DataPattern
patternParam(const report::Json &request)
{
    const auto seed = static_cast<std::uint64_t>(intParam(
        request, "pattern_seed", 0, 0,
        std::numeric_limits<std::int64_t>::max()));
    const auto *value = request.find("pattern");
    if (value == nullptr)
        return rhmodel::DataPattern(rhmodel::PatternId::Checkered, seed);
    if (value->type() != report::Json::Type::String)
        throw ParamError{"'pattern' must be a string"};
    for (auto id : rhmodel::allPatterns)
        if (value->asString() == rhmodel::to_string(id))
            return rhmodel::DataPattern(id, seed);
    throw ParamError{"unknown 'pattern' (Table 1 names, e.g. "
                     "\"checkered\", \"rowstripe-inv\", \"random\")"};
}

rhmodel::Conditions
conditionsParam(const report::Json &request)
{
    rhmodel::Conditions conditions;
    conditions.temperature =
        doubleParam(request, "temperature", 50.0, -40.0, 150.0);
    conditions.tAggOn = doubleParam(request, "t_agg_on", 0.0, 0.0, 1e6);
    conditions.tAggOff = doubleParam(request, "t_agg_off", 0.0, 0.0, 1e6);
    return conditions;
}

/** A double-sided victim needs both physical neighbours in the bank. */
unsigned
victimRowParam(const report::Json &request, const std::string &name,
               const dram::Geometry &geometry)
{
    const unsigned last = geometry.rowsPerBank() - 2;
    return static_cast<unsigned>(
        requiredIntParam(request, name, 1, last));
}

} // namespace

QueryEngine::QueryEngine() : QueryEngine(EngineOptions{}) {}

QueryEngine::QueryEngine(const EngineOptions &options)
    : fuzzSeedBase(options.fuzzSeedBase)
{
    snap::StoreFactory factory;
    if (!options.snapshotIn.empty()) {
        std::string error;
        if (auto reader = snap::Reader::open(options.snapshotIn, error)) {
            util::inform("warm start: snapshot ", options.snapshotIn,
                         " (", reader->header().recordCount,
                         " curves, built at git ",
                         reader->header().git, ")");
            factory.attachReader(std::move(reader));
        } else {
            util::warn("snapshot ", options.snapshotIn, ": ", error,
                       "; serving from live computation");
        }
    }
    if (!options.spillFile.empty()) {
        std::string error;
        if (auto spill = snap::SpillTier::create(
                options.spillFile, options.spillMaxBytes, error))
            factory.attachSpill(std::move(spill));
        else
            util::warn(error, "; evictions will not be spilled");
    }
    if (factory.any())
        fleet.setStoreProvider(
            [factory](rhmodel::Mfr mfr, unsigned module_index,
                      unsigned subarrays_per_bank) {
                return factory.storeFor(mfr, module_index,
                                        subarrays_per_bank);
            });
}

bool
QueryEngine::isEngineOp(const std::string &op)
{
    return op == "row_hcfirst" || op == "ber" || op == "worst_pattern" ||
           op == "profile_slice" || op == "fuzz_best";
}

core::Tester &
QueryEngine::tester(rhmodel::Mfr mfr, unsigned module_index)
{
    std::lock_guard lock(buildMutex);
    return *fleet.module(mfr, module_index).tester;
}

report::Json
QueryEngine::execute(const report::Json &request)
{
    const std::int64_t id = requestId(request);
    if (request.type() != report::Json::Type::Object)
        return makeError(id, err::kBadRequest,
                         "request must be a JSON object");
    const auto *op_value = request.find("op");
    if (op_value == nullptr ||
        op_value->type() != report::Json::Type::String)
        return makeError(id, err::kBadRequest,
                         "request needs a string 'op'");
    const std::string &op = op_value->asString();
    if (!isEngineOp(op))
        return makeError(id, err::kUnknownOp, "unknown op '" + op + "'");
    if (id == kNoRequestId)
        return makeError(id, err::kBadRequest,
                         "request needs an integer 'id'");

    // The per-op span nests under the caller's trace context (the
    // dispatcher installs it before calling in), so a stitched fleet
    // trace shows engine.<op> — and the kernel spans beneath it —
    // inside the shard's serve.exec hop.
    obs::Span span("engine." + op);

    try {
        const auto mfr = mfrParam(request);
        const auto module_index = static_cast<unsigned>(
            intParam(request, "module", 0, 0, 63));
        auto &tester = this->tester(mfr, module_index);
        const auto &geometry = tester.module().module().geometry();
        const auto bank = static_cast<unsigned>(intParam(
            request, "bank", 0, 0, geometry.banks - 1));
        const auto conditions = conditionsParam(request);
        const auto pattern = patternParam(request);
        const auto trial = static_cast<unsigned>(
            intParam(request, "trial", 0, 0, 1023));

        auto result = report::Json::object();
        if (op == "row_hcfirst") {
            const unsigned row =
                victimRowParam(request, "row", geometry);
            result.set("row", row);
            result.set("hcfirst",
                       tester.hcFirstSearch(bank, row, conditions,
                                            pattern, trial));
        } else if (op == "ber") {
            const unsigned row =
                victimRowParam(request, "row", geometry);
            const auto hammers = static_cast<std::uint64_t>(
                intParam(request, "hammers",
                         static_cast<std::int64_t>(core::kBerHammers),
                         1, 100'000'000));
            result.set("row", row);
            result.set("hammers", hammers);
            result.set("flips",
                       tester.berOfRow(bank, row, conditions, pattern,
                                       hammers, trial));
        } else if (op == "worst_pattern") {
            const auto *rows_value = request.find("rows");
            if (rows_value == nullptr ||
                rows_value->type() != report::Json::Type::Array ||
                rows_value->size() == 0)
                throw ParamError{"'rows' must be a non-empty array"};
            if (rows_value->size() > kMaxWcdpRows)
                throw ParamError{"'rows' is capped at " +
                                 std::to_string(kMaxWcdpRows) +
                                 " sample rows"};
            std::vector<unsigned> rows;
            const unsigned last = geometry.rowsPerBank() - 2;
            for (std::size_t i = 0; i < rows_value->size(); ++i) {
                const auto &entry = rows_value->at(i);
                if (entry.type() != report::Json::Type::Int ||
                    entry.asInt() < 1 || entry.asInt() > last)
                    throw ParamError{"'rows' entries must be victim "
                                     "rows in [1, " +
                                     std::to_string(last) + "]"};
                rows.push_back(static_cast<unsigned>(entry.asInt()));
            }
            const auto wcdp =
                tester.findWorstCasePattern(bank, rows, conditions);
            result.set("pattern", rhmodel::to_string(wcdp.id()));
            result.set("pattern_seed", wcdp.patternSeed());
        } else if (op == "fuzz_best") {
            // A fuzz result is only defined relative to its seed, so
            // an explicit one is mandatory — defaulting it would make
            // "the best pattern" irreproducible.
            if (request.find("seed") == nullptr)
                throw ParamError{
                    "fuzz_best requires an explicit 'seed': the "
                    "search result is only reproducible relative to "
                    "it (pass any non-negative integer)"};
            const auto request_seed =
                static_cast<std::uint64_t>(requiredIntParam(
                    request, "seed", 0,
                    std::numeric_limits<std::int64_t>::max()));
            const unsigned row0 =
                victimRowParam(request, "row0", geometry);
            const auto count = static_cast<unsigned>(intParam(
                request, "count", 4, 1, kMaxFuzzRows));
            const unsigned last = geometry.rowsPerBank() - 2;
            if (row0 + count - 1 > last)
                throw ParamError{"victim anchors [row0, row0+count) "
                                 "exceed the bank's last victim row " +
                                 std::to_string(last)};

            fuzz::SearchConfig config;
            config.seed = fuzzSeedBase ^ request_seed;
            config.population = static_cast<unsigned>(intParam(
                request, "population", 16, 2, kMaxFuzzPopulation));
            config.generations = static_cast<unsigned>(intParam(
                request, "generations", 4, 1, kMaxFuzzGenerations));
            config.elites =
                std::max(1u, config.population / 4);
            config.slots = static_cast<unsigned>(
                intParam(request, "slots", 8, 1, 32));
            config.maxAggressors = static_cast<unsigned>(
                intParam(request, "max_aggressors", 4, 2, 8));
            config.bank = bank;
            for (unsigned row = row0; row < row0 + count; ++row)
                config.candidateRows.push_back(row);
            config.maxVictimRow = last;
            config.conditions = conditions;
            config.seedPatternId = pattern.id();
            config.seedPatternSeed = pattern.patternSeed();
            config.trial = trial;
            config.deadlineMs = static_cast<double>(intParam(
                request, "deadline_ms", -1, 0,
                std::numeric_limits<std::int64_t>::max()));

            const auto outcome = fuzz::Search(config).run(
                tester.module().analytic());

            // kNeverFlips (inf) is not JSON-representable; mirror the
            // tester's kNotVulnerable convention: 0 = no flip found.
            auto finite = [](double activations) {
                return activations == rhmodel::kNeverFlips
                           ? 0.0
                           : activations;
            };
            result.set("seed", request_seed);
            result.set("best", outcome.best.gene.toJson());
            result.set("best_activations",
                       finite(outcome.best.activations));
            result.set("best_victim", outcome.best.victim);
            result.set("uniform_activations",
                       finite(outcome.uniformActivations));
            auto trace = report::Json::array();
            for (double best : outcome.generationBest)
                trace.push(finite(best));
            result.set("generation_best", std::move(trace));
            result.set("evaluated", outcome.candidatesEvaluated);
            result.set("generations_completed",
                       outcome.generationsCompleted);
            result.set("budget_exhausted", outcome.budgetExhausted);
        } else { // profile_slice
            const unsigned row0 =
                victimRowParam(request, "row0", geometry);
            const auto count = static_cast<unsigned>(
                requiredIntParam(request, "count", 1, kMaxSliceRows));
            const unsigned last = geometry.rowsPerBank() - 2;
            if (row0 + count - 1 > last)
                throw ParamError{"slice [row0, row0+count) exceeds the "
                                 "bank's last victim row " +
                                 std::to_string(last)};
            auto curve = report::Json::array();
            for (unsigned row = row0; row < row0 + count; ++row)
                curve.push(tester.hcFirstSearch(bank, row, conditions,
                                                pattern, trial));
            result.set("row0", row0);
            result.set("hcfirst", std::move(curve));
        }
        return makeResult(id, std::move(result));
    } catch (const ParamError &error) {
        return makeError(id, err::kBadRequest, error.message);
    }
}

std::string
QueryEngine::executeRaw(const std::string &body)
{
    report::Json request;
    std::string parse_error;
    if (!report::Json::parse(body, request, parse_error))
        return serialize(makeError(kNoRequestId, err::kBadRequest,
                                   "malformed JSON: " + parse_error));
    return serialize(execute(request));
}

} // namespace rhs::serve

/**
 * @file
 * The event-driven rhs-rpc/1 connection layer.
 *
 * One ConnLayer owns a loopback TCP listener and a single epoll event
 * thread that holds every client connection — thousands of idle
 * connections cost one fd and a few hundred bytes each, not a thread.
 * This replaced the PR 4 accept-thread + reader-thread-per-connection
 * design, which capped a shard at a few hundred clients.
 *
 * Responsibilities are split sharply:
 *
 *  - the layer owns sockets, framing, and flow: non-blocking accept,
 *    per-connection read buffers with partial-frame reassembly (a
 *    frame may arrive one byte at a time across epoll wakeups),
 *    per-connection write buffers with partial-write carry-over
 *    (EPOLLOUT is subscribed only while a connection has unflushed
 *    output), and oversize-frame draining that keeps the stream
 *    aligned;
 *  - the owner (serve::Server, route::Router) supplies Events
 *    callbacks and decides what the bytes mean. onFrame runs on the
 *    event thread, so handlers must not block — engine work is
 *    enqueued for a dispatcher, never executed in the callback.
 *
 * send() is callable from any thread: it tries the socket directly
 * when the connection has no backlog and otherwise appends to the
 * write buffer and flips EPOLLOUT on. An eventfd wakes the event
 * thread for stop/drain transitions.
 *
 * Frame-boundary semantics match the blocking protocol.cc reader
 * byte for byte (tests/serve_test.cc pins them):
 *  - a declared payload above the cap is consumed and discarded, then
 *    reported via onOversize — the connection stays up and aligned;
 *  - end of stream between frames is a clean close;
 *  - end of stream (or a read error) inside a frame is reported via
 *    onTruncated and closes only that connection.
 */

#ifndef RHS_SERVE_CONN_LAYER_HH
#define RHS_SERVE_CONN_LAYER_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

namespace rhs::serve
{

/** Connection-layer tunables. */
struct ConnLayerConfig
{
    std::string host = "127.0.0.1"; //!< Loopback only by default.
    unsigned short port = 0;        //!< 0 = ephemeral (see port()).
    unsigned maxConnections = 128;  //!< Accept cap; also the backlog.
    std::string name = "rhs-serve"; //!< Log prefix ("rhs-route", ...).
    //! Hard ceiling on one connection's unflushed output; a client
    //! that stops reading past this point is disconnected rather than
    //! ballooning the process (64 MiB default).
    std::size_t maxWriteBuffer = 64u << 20;
    //! stop() flushes pending output for at most this long before
    //! closing connections regardless (dead peers must not hang the
    //! drain forever).
    unsigned drainTimeoutMs = 5000;
};

/** The epoll-driven connection layer shared by rhs-serve and rhs-route. */
class ConnLayer
{
  public:
    /**
     * One live connection. Lifetime is shared: the event thread holds
     * a reference while the fd is registered, and owners keep
     * references from queued requests, so a response can always be
     * written (or cheaply refused) after the peer is gone. The fd is
     * closed by the destructor — never while any holder could still
     * name it — so a recycled fd number can never be written to by a
     * stale request.
     */
    struct Conn
    {
        ~Conn();

        unsigned id = 0; //!< 1-based accept sequence number.

        // --- Write half (any thread, under writeMutex) --------------
        std::mutex writeMutex;
        int fd = -1;
        bool wantWrite = false; //!< EPOLLOUT currently subscribed.
        std::string outBuf;     //!< Unflushed output bytes.
        std::size_t outOff = 0; //!< Consumed prefix of outBuf.
        ConnLayer *layer = nullptr;

        //! False once the connection is closing; checked without the
        //! lock by handlers, rechecked under it by writers.
        std::atomic<bool> open{true};

        // --- Read half (event thread only) --------------------------
        std::string inBuf;
        std::size_t inOff = 0;           //!< Consumed prefix of inBuf.
        std::uint64_t discardLeft = 0;   //!< Oversize payload to drain.
    };

    using ConnPtr = std::shared_ptr<Conn>;

    /** Owner callbacks; all fire on the event thread. */
    struct Events
    {
        //! One complete frame body (possibly empty).
        std::function<void(const ConnPtr &, std::string &&)> onFrame;
        //! A declared-oversize payload was fully drained; the owner
        //! answers with frame_too_large (the connection stays up).
        std::function<void(const ConnPtr &)> onOversize;
        //! The peer died inside a frame; the connection is closing.
        std::function<void()> onTruncated;
        //! A connection was accepted (its id).
        std::function<void(unsigned)> onAccepted;
        //! Accept refused over maxConnections. The callback may write
        //! a refusal frame to `fd` (fresh socket, never blocks); the
        //! layer closes the fd afterwards.
        std::function<void(int)> onRejected;
    };

    ConnLayer(ConnLayerConfig config, Events events);
    ~ConnLayer();

    ConnLayer(const ConnLayer &) = delete;
    ConnLayer &operator=(const ConnLayer &) = delete;

    /**
     * Bind, listen (backlog = maxConnections), and start the event
     * thread. RHS_FATAL on socket setup errors.
     */
    void start();

    /** The bound port (the ephemeral choice when config.port == 0). */
    unsigned short port() const { return boundPort; }

    /** Stop accepting new connections (idempotent, any thread). */
    void stopAccepting();

    /**
     * Flush pending output (bounded by drainTimeoutMs), close every
     * connection, and join the event thread. Idempotent. Call after
     * the owner's dispatcher has drained — everything sent before
     * this call is flushed to the sockets first.
     */
    void drainAndStop();

    /**
     * Frame `body` and write it to the connection; thread-safe.
     * Partial writes are carried in the connection's write buffer and
     * completed by the event thread. False when the connection is
     * closed/closing (the bytes are dropped, exactly like a write to
     * a dead blocking socket).
     */
    bool send(const ConnPtr &conn, const std::string &body);

    /** Live connections (accepted minus closed). */
    std::size_t connectionCount() const { return liveConns.load(); }

  private:
    void loop();
    void acceptReady();
    void readReady(const ConnPtr &conn);
    bool flushLocked(Conn &conn); //!< Returns false on write error.
    void parseBuffer(const ConnPtr &conn);
    void closeConn(const ConnPtr &conn);
    void updateInterest(Conn &conn); //!< Under conn.writeMutex.
    void wake();

    ConnLayerConfig config;
    Events events;

    int listenFd = -1;
    int epollFd = -1;
    int wakeFd = -1;
    unsigned short boundPort = 0;

    std::thread eventThread;
    std::atomic<bool> acceptStopped{false};
    std::atomic<bool> draining{false};
    std::atomic<bool> started{false};
    bool stopped = false; //!< drainAndStop completed (stopMutex).
    std::mutex stopMutex;

    //! Event-thread-only: fd -> connection.
    std::map<int, ConnPtr> conns;
    std::atomic<std::size_t> liveConns{0};
    std::atomic<unsigned> nextConnId{0};
};

} // namespace rhs::serve

#endif // RHS_SERVE_CONN_LAYER_HH

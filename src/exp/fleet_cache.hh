/**
 * @file
 * Shared module/fleet construction for the experiment driver.
 *
 * Before this layer, every bench binary rebuilt its SimulatedDimms,
 * Testers, tested-row samples, and worst-case data patterns (WCDP,
 * §4.2) from scratch. One `rhs-bench` invocation runs many experiments
 * in one process, so the cache builds each of those once and hands the
 * same instances to every experiment that requests the same scale.
 *
 * Sharing is sound because the analytic engine's caches are
 * value-preserving: a warm cache returns byte-identical numbers (see
 * docs/MODEL.md, "Determinism under parallel execution"), so an
 * experiment cannot observe whether another ran before it.
 */

#ifndef RHS_EXP_FLEET_CACHE_HH
#define RHS_EXP_FLEET_CACHE_HH

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "core/tester.hh"
#include "exp/scale.hh"
#include "rhmodel/dimm.hh"

namespace rhs::exp
{

/** One cached module under test. */
struct Module
{
    std::unique_ptr<rhmodel::SimulatedDimm> dimm;
    std::unique_ptr<core::Tester> tester;
};

/** One fleet entry: a cached module plus its sample and WCDP. */
struct FleetEntry
{
    rhmodel::SimulatedDimm *dimm = nullptr;
    core::Tester *tester = nullptr;
    rhmodel::DataPattern wcdp{rhmodel::PatternId::Checkered};
    std::vector<unsigned> rows; //!< Tested victim rows.
};

/** Builds and shares modules, fleets, and WCDPs across experiments. */
class FleetCache
{
  public:
    /**
     * Supplies a RowEval persistence store for a module about to be
     * built (snapshot reader / builder / spill tier — see src/snap).
     * May return nullptr for "no store for this module".
     */
    using StoreProvider =
        std::function<std::shared_ptr<rhmodel::RowEvalStore>(
            rhmodel::Mfr mfr, unsigned module_index,
            unsigned subarrays_per_bank)>;

    /**
     * Install a store provider. Applies to modules built from now on
     * AND retroactively to already-cached ones, so the call order
     * against the first module() does not matter.
     */
    void setStoreProvider(StoreProvider provider);

    /**
     * The module for (mfr, index), building it on first use.
     *
     * @param subarrays_per_bank 0 = the model default; nonzero selects
     *        a custom geometry (cached separately).
     */
    Module &module(rhmodel::Mfr mfr, unsigned index,
                   unsigned subarrays_per_bank = 0);

    /**
     * The standard fleet at a scale: `modulesPerMfr` modules per
     * manufacturer (module indices seed..seed+n-1), each with its
     * tested-row sample and its WCDP determined on a three-row sample
     * per §4.2. Cached per (modulesPerMfr, maxRows, rowsPerRegion,
     * seed).
     */
    const std::vector<FleetEntry> &fleet(const Scale &scale);

    /**
     * The worst-case data pattern of a module on an explicit sample,
     * cached per (module, bank, sample).
     */
    const rhmodel::DataPattern &
    wcdp(Module &module, unsigned bank,
         const std::vector<unsigned> &sample_rows);

    // --- Statistics (driver status output and tests) ----------------
    unsigned modulesBuilt() const { return modules_built; }
    unsigned fleetsBuilt() const { return fleets_built; }
    unsigned fleetHits() const { return fleet_hits; }
    unsigned wcdpSearches() const { return wcdp_searches; }
    unsigned wcdpHits() const { return wcdp_hits; }

  private:
    using ModuleKey = std::tuple<unsigned, unsigned, unsigned>;
    using FleetKey = std::tuple<unsigned, unsigned, unsigned, unsigned>;
    using WcdpKey = std::pair<const Module *, std::string>;

    std::map<ModuleKey, Module> modules;
    std::map<FleetKey, std::vector<FleetEntry>> fleets;
    std::map<WcdpKey, rhmodel::DataPattern> wcdps;
    StoreProvider storeProvider;

    unsigned modules_built = 0;
    unsigned fleets_built = 0;
    unsigned fleet_hits = 0;
    unsigned wcdp_searches = 0;
    unsigned wcdp_hits = 0;
};

} // namespace rhs::exp

#endif // RHS_EXP_FLEET_CACHE_HH

/**
 * @file
 * The static experiment registry behind `rhs-bench`.
 *
 * Experiments register explicitly (bench/experiments/all.cc calls one
 * registration function per experiment), not via static initializers:
 * explicit registration survives static-library linking, and the
 * registration order is the stable `--list` / `--all` execution order.
 */

#ifndef RHS_EXP_REGISTRY_HH
#define RHS_EXP_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "exp/experiment.hh"

namespace rhs::exp
{

/** Process-wide experiment registry. */
class Registry
{
  public:
    /** Register an experiment; fatal on duplicate names. */
    static void add(std::unique_ptr<Experiment> experiment);

    /** All experiments, in registration order. */
    static const std::vector<std::unique_ptr<Experiment>> &all();

    /** Exact-name lookup; nullptr when absent. */
    static Experiment *find(const std::string &name);

    /**
     * Experiments whose name contains any of the comma-separated
     * substring patterns ("temp,fig4"); an empty pattern list matches
     * all. Registration order, each experiment at most once.
     */
    static std::vector<Experiment *>
    filter(const std::string &patterns);

    /** Drop all registrations (tests only). */
    static void clearForTest();
};

} // namespace rhs::exp

#endif // RHS_EXP_REGISTRY_HH

#include "exp/scale.hh"

#include <algorithm>

namespace rhs::exp
{

Scale
resolveScale(const util::Cli &cli, const ScaleDefaults &defaults)
{
    Scale scale;
    scale.maxRows = defaults.defaultRows;
    if (cli.has("full")) {
        scale.maxRows = defaults.fullRows;
        scale.modulesPerMfr = defaults.fullModules;
    }
    if (cli.has("modules"))
        scale.modulesPerMfr = static_cast<unsigned>(
            cli.getInt("modules", scale.modulesPerMfr));
    if (cli.has("rows"))
        scale.maxRows =
            static_cast<unsigned>(cli.getInt("rows", scale.maxRows));
    if (cli.has("smoke")) {
        scale.smoke = true;
        // A smoke run caps the sample unless the user pinned it.
        if (!cli.has("rows") && !cli.has("full"))
            scale.maxRows = std::min(scale.maxRows, defaults.smokeRows);
        if (!cli.has("modules") && !cli.has("full"))
            scale.modulesPerMfr = 1;
    }
    scale.rowsPerRegion = scale.maxRows / 3 + 1;
    scale.jobs = static_cast<unsigned>(cli.getInt("jobs", 0));
    scale.seed = static_cast<unsigned>(cli.getInt("seed", 0));
    return scale;
}

} // namespace rhs::exp

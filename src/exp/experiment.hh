/**
 * @file
 * The Experiment interface: one registered figure/table reproduction.
 *
 * An experiment declares its identity (registry name, the header title
 * and paper-source line its table output prints), its CLI options, and
 * its scale defaults; `run` executes it against the shared FleetCache
 * and returns a report::Document carrying named data series and the
 * paper-expectation checks.
 *
 * Contract for `run`:
 *  - print the classic human-readable table to stdout only when
 *    `ctx.table` is set, byte-identical to the pre-registry standalone
 *    binary at the same scale/seed/jobs (header included);
 *  - fill the document's series/data/checks regardless of format;
 *  - read experiment-specific options from `ctx.cli` with the same
 *    defaults the standalone binary used.
 */

#ifndef RHS_EXP_EXPERIMENT_HH
#define RHS_EXP_EXPERIMENT_HH

#include <string>
#include <vector>

#include "exp/fleet_cache.hh"
#include "exp/scale.hh"
#include "report/document.hh"
#include "util/cli.hh"

namespace rhs::exp
{

/** One experiment-specific CLI option (for --list and parsing). */
struct OptionSpec
{
    std::string name;     //!< Without the leading "--".
    std::string fallback; //!< Default, as printed by --list.
    std::string help;
};

/** Everything an experiment needs to run. */
struct RunContext
{
    Scale scale;
    FleetCache &fleet;
    const util::Cli &cli;
    bool table = false; //!< Print the classic stdout table.
};

/** Base class of every registered experiment. */
class Experiment
{
  public:
    virtual ~Experiment() = default;

    /** Registry id, e.g. "fig4_ber_vs_temp". */
    virtual std::string name() const = 0;

    /** Header title (first printHeader argument). */
    virtual std::string title() const = 0;

    /** Paper source line (second printHeader argument). */
    virtual std::string source() const = 0;

    /** Experiment-specific options beyond the shared scale options. */
    virtual std::vector<OptionSpec> options() const { return {}; }

    /** Scale defaults (the pre-registry parseScale arguments). */
    virtual ScaleDefaults scaleDefaults() const { return {}; }

    /** Execute and return the structured result. */
    virtual report::Document run(RunContext &ctx) = 0;

  protected:
    /** A document pre-filled with this experiment's identity. */
    report::Document
    makeDocument() const
    {
        report::Document doc;
        doc.experiment = name();
        doc.title = title();
        doc.source = source();
        return doc;
    }
};

} // namespace rhs::exp

#endif // RHS_EXP_EXPERIMENT_HH

#include "exp/registry.hh"

#include "util/logging.hh"

namespace rhs::exp
{

namespace
{

std::vector<std::unique_ptr<Experiment>> &
experiments()
{
    static std::vector<std::unique_ptr<Experiment>> registry;
    return registry;
}

} // namespace

void
Registry::add(std::unique_ptr<Experiment> experiment)
{
    RHS_ASSERT(experiment, "null experiment registration");
    const std::string name = experiment->name();
    RHS_ASSERT(!name.empty(), "experiment with an empty name");
    if (find(name))
        RHS_FATAL("duplicate experiment registration: ", name);
    experiments().push_back(std::move(experiment));
}

const std::vector<std::unique_ptr<Experiment>> &
Registry::all()
{
    return experiments();
}

Experiment *
Registry::find(const std::string &name)
{
    for (const auto &experiment : experiments())
        if (experiment->name() == name)
            return experiment.get();
    return nullptr;
}

std::vector<Experiment *>
Registry::filter(const std::string &patterns)
{
    // Comma-separated substring alternatives; empty segments (as in
    // "temp,") are ignored, and no pattern at all matches everything.
    std::vector<std::string> parts;
    for (std::size_t begin = 0; begin <= patterns.size();) {
        std::size_t end = patterns.find(',', begin);
        if (end == std::string::npos)
            end = patterns.size();
        if (end > begin)
            parts.push_back(patterns.substr(begin, end - begin));
        begin = end + 1;
    }

    std::vector<Experiment *> matches;
    for (const auto &experiment : experiments()) {
        const std::string &name = experiment->name();
        bool matched = parts.empty();
        for (const auto &part : parts)
            matched = matched || name.find(part) != std::string::npos;
        if (matched)
            matches.push_back(experiment.get());
    }
    return matches;
}

void
Registry::clearForTest()
{
    experiments().clear();
}

} // namespace rhs::exp

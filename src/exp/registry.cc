#include "exp/registry.hh"

#include "util/logging.hh"

namespace rhs::exp
{

namespace
{

std::vector<std::unique_ptr<Experiment>> &
experiments()
{
    static std::vector<std::unique_ptr<Experiment>> registry;
    return registry;
}

} // namespace

void
Registry::add(std::unique_ptr<Experiment> experiment)
{
    RHS_ASSERT(experiment, "null experiment registration");
    const std::string name = experiment->name();
    RHS_ASSERT(!name.empty(), "experiment with an empty name");
    if (find(name))
        RHS_FATAL("duplicate experiment registration: ", name);
    experiments().push_back(std::move(experiment));
}

const std::vector<std::unique_ptr<Experiment>> &
Registry::all()
{
    return experiments();
}

Experiment *
Registry::find(const std::string &name)
{
    for (const auto &experiment : experiments())
        if (experiment->name() == name)
            return experiment.get();
    return nullptr;
}

std::vector<Experiment *>
Registry::filter(const std::string &substring)
{
    std::vector<Experiment *> matches;
    for (const auto &experiment : experiments())
        if (experiment->name().find(substring) != std::string::npos)
            matches.push_back(experiment.get());
    return matches;
}

void
Registry::clearForTest()
{
    experiments().clear();
}

} // namespace rhs::exp

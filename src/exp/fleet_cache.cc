#include "exp/fleet_cache.hh"

#include <algorithm>
#include <sstream>

#include "util/logging.hh"

namespace rhs::exp
{

Module &
FleetCache::module(rhmodel::Mfr mfr, unsigned index,
                   unsigned subarrays_per_bank)
{
    const ModuleKey key{static_cast<unsigned>(mfr), index,
                        subarrays_per_bank};
    auto it = modules.find(key);
    if (it == modules.end()) {
        Module entry;
        if (subarrays_per_bank == 0) {
            entry.dimm =
                std::make_unique<rhmodel::SimulatedDimm>(mfr, index);
        } else {
            rhmodel::DimmOptions options;
            options.subarraysPerBank = subarrays_per_bank;
            entry.dimm = std::make_unique<rhmodel::SimulatedDimm>(
                mfr, index, options);
        }
        entry.tester = std::make_unique<core::Tester>(*entry.dimm);
        ++modules_built;
        it = modules.emplace(key, std::move(entry)).first;
    }
    return it->second;
}

const std::vector<FleetEntry> &
FleetCache::fleet(const Scale &scale)
{
    const FleetKey key{scale.modulesPerMfr, scale.maxRows,
                       scale.rowsPerRegion, scale.seed};
    auto it = fleets.find(key);
    if (it != fleets.end()) {
        ++fleet_hits;
        return it->second;
    }

    std::vector<FleetEntry> fleet;
    for (auto mfr : rhmodel::allMfrs) {
        for (unsigned i = 0; i < scale.modulesPerMfr; ++i) {
            Module &cached = module(mfr, scale.seed + i);
            FleetEntry entry;
            entry.dimm = cached.dimm.get();
            entry.tester = cached.tester.get();

            const auto all = core::testedRows(
                entry.dimm->module().geometry(), scale.rowsPerRegion);
            const std::size_t take =
                std::min<std::size_t>(scale.maxRows, all.size());
            RHS_ASSERT(take > 0, "no tested rows at this scale");
            entry.rows.reserve(take);
            for (std::size_t r = 0; r < take; ++r)
                entry.rows.push_back(all[r * all.size() / take]);

            // Determine the module's WCDP on a small sample (§4.2).
            const std::vector<unsigned> sample{
                entry.rows[0], entry.rows[entry.rows.size() / 2],
                entry.rows.back()};
            entry.wcdp = wcdp(cached, 0, sample);
            fleet.push_back(std::move(entry));
        }
    }
    ++fleets_built;
    return fleets.emplace(key, std::move(fleet)).first->second;
}

const rhmodel::DataPattern &
FleetCache::wcdp(Module &module, unsigned bank,
                 const std::vector<unsigned> &sample_rows)
{
    std::ostringstream sample_key;
    sample_key << bank;
    for (unsigned row : sample_rows)
        sample_key << ',' << row;
    const WcdpKey key{&module, sample_key.str()};
    ++wcdp_searches;
    auto it = wcdps.find(key);
    if (it != wcdps.end()) {
        ++wcdp_hits;
        return it->second;
    }
    rhmodel::Conditions reference;
    const auto pattern =
        module.tester->findWorstCasePattern(bank, sample_rows,
                                            reference);
    return wcdps.emplace(key, pattern).first->second;
}

} // namespace rhs::exp

#include "exp/fleet_cache.hh"

#include <algorithm>
#include <sstream>

#include "obs/metrics.hh"
#include "util/logging.hh"

namespace rhs::exp
{

namespace
{

/**
 * Fleet construction counters, published so a long-lived server's
 * `stats` op shows how much of the fleet is materialized (the plain
 * unsigned accessors on FleetCache stay per-instance for tests).
 */
struct FleetMetrics
{
    obs::Counter &modulesBuilt;
    obs::Counter &fleetHits;
    obs::Counter &fleetMisses;
    obs::Counter &wcdpHits;
    obs::Counter &wcdpMisses;

    FleetMetrics()
        : modulesBuilt(
              obs::Registry::global().counter("fleet.modules.built")),
          fleetHits(obs::Registry::global().counter("fleet.cache.hits")),
          fleetMisses(
              obs::Registry::global().counter("fleet.cache.misses")),
          wcdpHits(obs::Registry::global().counter("fleet.wcdp.hits")),
          wcdpMisses(obs::Registry::global().counter("fleet.wcdp.misses"))
    {
    }

    static FleetMetrics &
    get()
    {
        static FleetMetrics metrics;
        return metrics;
    }
};

} // namespace

void
FleetCache::setStoreProvider(StoreProvider provider)
{
    storeProvider = std::move(provider);
    for (auto &[key, entry] : modules) {
        if (!storeProvider)
            break;
        entry.dimm->analytic().setEvalStore(storeProvider(
            static_cast<rhmodel::Mfr>(std::get<0>(key)),
            std::get<1>(key), std::get<2>(key)));
    }
}

Module &
FleetCache::module(rhmodel::Mfr mfr, unsigned index,
                   unsigned subarrays_per_bank)
{
    const ModuleKey key{static_cast<unsigned>(mfr), index,
                        subarrays_per_bank};
    auto it = modules.find(key);
    if (it == modules.end()) {
        Module entry;
        if (subarrays_per_bank == 0) {
            entry.dimm =
                std::make_unique<rhmodel::SimulatedDimm>(mfr, index);
        } else {
            rhmodel::DimmOptions options;
            options.subarraysPerBank = subarrays_per_bank;
            entry.dimm = std::make_unique<rhmodel::SimulatedDimm>(
                mfr, index, options);
        }
        entry.tester = std::make_unique<core::Tester>(*entry.dimm);
        if (storeProvider)
            entry.dimm->analytic().setEvalStore(
                storeProvider(mfr, index, subarrays_per_bank));
        ++modules_built;
        FleetMetrics::get().modulesBuilt.add();
        it = modules.emplace(key, std::move(entry)).first;
    }
    return it->second;
}

const std::vector<FleetEntry> &
FleetCache::fleet(const Scale &scale)
{
    const FleetKey key{scale.modulesPerMfr, scale.maxRows,
                       scale.rowsPerRegion, scale.seed};
    auto it = fleets.find(key);
    if (it != fleets.end()) {
        ++fleet_hits;
        FleetMetrics::get().fleetHits.add();
        return it->second;
    }
    FleetMetrics::get().fleetMisses.add();

    std::vector<FleetEntry> fleet;
    for (auto mfr : rhmodel::allMfrs) {
        for (unsigned i = 0; i < scale.modulesPerMfr; ++i) {
            Module &cached = module(mfr, scale.seed + i);
            FleetEntry entry;
            entry.dimm = cached.dimm.get();
            entry.tester = cached.tester.get();

            const auto all = core::testedRows(
                entry.dimm->module().geometry(), scale.rowsPerRegion);
            const std::size_t take =
                std::min<std::size_t>(scale.maxRows, all.size());
            RHS_ASSERT(take > 0, "no tested rows at this scale");
            entry.rows.reserve(take);
            for (std::size_t r = 0; r < take; ++r)
                entry.rows.push_back(all[r * all.size() / take]);

            // Determine the module's WCDP on a small sample (§4.2).
            const std::vector<unsigned> sample{
                entry.rows[0], entry.rows[entry.rows.size() / 2],
                entry.rows.back()};
            entry.wcdp = wcdp(cached, 0, sample);
            fleet.push_back(std::move(entry));
        }
    }
    ++fleets_built;
    return fleets.emplace(key, std::move(fleet)).first->second;
}

const rhmodel::DataPattern &
FleetCache::wcdp(Module &module, unsigned bank,
                 const std::vector<unsigned> &sample_rows)
{
    std::ostringstream sample_key;
    sample_key << bank;
    for (unsigned row : sample_rows)
        sample_key << ',' << row;
    const WcdpKey key{&module, sample_key.str()};
    ++wcdp_searches;
    auto it = wcdps.find(key);
    if (it != wcdps.end()) {
        ++wcdp_hits;
        FleetMetrics::get().wcdpHits.add();
        return it->second;
    }
    FleetMetrics::get().wcdpMisses.add();
    rhmodel::Conditions reference;
    const auto pattern =
        module.tester->findWorstCasePattern(bank, sample_rows,
                                            reference);
    return wcdps.emplace(key, pattern).first->second;
}

} // namespace rhs::exp

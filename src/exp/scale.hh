/**
 * @file
 * The scale at which an experiment runs, and its resolution from CLI
 * options.
 *
 * The --full / --rows interaction is explicit and documented here:
 *
 *  - default:        maxRows = the experiment's defaultRows, one
 *                    module per manufacturer.
 *  - --full:         maxRows = the experiment's fullRows and
 *                    modulesPerMfr = fullModules (a paper-scale run).
 *  - --rows N:       overrides maxRows, whether or not --full was
 *                    given (so "--full --rows N" is a full-module-count
 *                    run at a custom row sample).
 *  - --modules N:    overrides modulesPerMfr likewise.
 *  - rowsPerRegion is always derived from the final maxRows
 *                    (maxRows / 3 + 1): the first/middle/last regions
 *                    together cover the sample.
 */

#ifndef RHS_EXP_SCALE_HH
#define RHS_EXP_SCALE_HH

#include "util/cli.hh"

namespace rhs::exp
{

/** Per-experiment scale defaults (the pre-refactor parseScale args). */
struct ScaleDefaults
{
    unsigned fullRows = 400;    //!< maxRows under --full.
    unsigned fullModules = 2;   //!< modulesPerMfr under --full.
    unsigned defaultRows = 120; //!< maxRows otherwise.
    unsigned smokeRows = 18;    //!< maxRows cap under --smoke.
};

/** Resolved scale shared by the fleet cache and every experiment. */
struct Scale
{
    unsigned modulesPerMfr = 1;  //!< DIMMs per manufacturer.
    unsigned rowsPerRegion = 41; //!< Rows per first/middle/last region.
    unsigned maxRows = 120;      //!< Cap on total rows per module.
    unsigned jobs = 0;    //!< Worker count (0 = all hardware threads).
    unsigned seed = 0;    //!< Base module index (fleet identity).
    bool smoke = false;   //!< Reduced-scale CI run.

    bool
    operator==(const Scale &other) const
    {
        return modulesPerMfr == other.modulesPerMfr &&
               rowsPerRegion == other.rowsPerRegion &&
               maxRows == other.maxRows && seed == other.seed;
    }
};

/**
 * Resolve the common scale options (--modules, --rows, --full,
 * --smoke, --jobs, --seed) against an experiment's defaults. Does NOT
 * touch the global thread pool; the caller owns that.
 */
Scale resolveScale(const util::Cli &cli, const ScaleDefaults &defaults);

} // namespace rhs::exp

#endif // RHS_EXP_SCALE_HH

/**
 * @file
 * Descriptive statistics used throughout the characterization analyses.
 *
 * The paper reports means with 95% confidence intervals (Fig. 4),
 * box plots (Figs. 7, 9), letter-value plots (Figs. 8, 10), coefficients
 * of variation (Obsvs. 9, 11, 14) and percentile curves (Figs. 5, 11, 15).
 * This module implements those summaries over plain double vectors.
 */

#ifndef RHS_STATS_DESCRIPTIVE_HH
#define RHS_STATS_DESCRIPTIVE_HH

#include <cstddef>
#include <vector>

namespace rhs::stats
{

/** Arithmetic mean. @pre !xs.empty() */
double mean(const std::vector<double> &xs);

/** Sample standard deviation (n-1 denominator; 0 for n < 2). */
double stddev(const std::vector<double> &xs);

/**
 * Coefficient of variation: stddev / mean.
 * The paper uses CV to compare dispersion of BER and HCfirst
 * distributions across conditions (Obsv. 9/11) and across chips
 * (Obsv. 14). @pre mean(xs) != 0
 */
double coefficientOfVariation(const std::vector<double> &xs);

/**
 * Linear-interpolated quantile, q in [0, 1].
 * Uses the common "linear" (type-7) definition. @pre !xs.empty()
 */
double quantile(std::vector<double> xs, double q);

/** Median (quantile 0.5). */
double median(const std::vector<double> &xs);

/** Minimum. @pre !xs.empty() */
double minValue(const std::vector<double> &xs);

/** Maximum. @pre !xs.empty() */
double maxValue(const std::vector<double> &xs);

/** Half-width of the normal-approximation 95% confidence interval. */
double confidenceInterval95(const std::vector<double> &xs);

/**
 * Tukey box-plot summary (Figs. 7 and 9).
 * Whiskers extend 1.5 IQR beyond the quartiles, clamped to the data.
 */
struct BoxSummary
{
    double whiskerLow;  //!< Lowest datum within 1.5 IQR below Q1.
    double q1;          //!< Lower quartile.
    double median;      //!< Median.
    double q3;          //!< Upper quartile.
    double whiskerHigh; //!< Highest datum within 1.5 IQR above Q3.
};

/** Compute the Tukey box summary. @pre !xs.empty() */
BoxSummary boxSummary(const std::vector<double> &xs);

/**
 * Letter-value summary (Figs. 8 and 10): median, fourths (quartiles),
 * eighths (octiles), sixteenths, ... until boxes would cover fewer
 * than two points.
 */
struct LetterValues
{
    double median;
    //! Pairs (lower, upper) at depth 2^-k for k = 2, 3, ...
    std::vector<std::pair<double, double>> boxes;
};

/** Compute letter values down to the requested depth. */
LetterValues letterValues(const std::vector<double> &xs,
                          std::size_t max_depth = 4);

/**
 * Empirical survival curve evaluated at evenly spaced rank positions,
 * i.e. the values of xs sorted descending — the form of Figs. 5 and 11
 * ("rows ordered from most positive to most negative change").
 */
std::vector<double> sortedDescending(std::vector<double> xs);

/**
 * Fraction of entries strictly greater than zero. Identifies the
 * crossing point of Fig. 5 curves (e.g. "P45": 45% of rows have a
 * positive HCfirst change).
 */
double fractionPositive(const std::vector<double> &xs);

/** Sum of absolute values; the "cumulative magnitude" of Obsv. 7. */
double cumulativeMagnitude(const std::vector<double> &xs);

} // namespace rhs::stats

#endif // RHS_STATS_DESCRIPTIVE_HH

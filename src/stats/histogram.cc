#include "stats/histogram.hh"

#include <algorithm>

#include "util/logging.hh"

namespace rhs::stats
{

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo(lo), width((hi - lo) / static_cast<double>(bins)), counts(bins, 0)
{
    RHS_ASSERT(hi > lo, "histogram range must be non-empty");
    RHS_ASSERT(bins > 0, "histogram needs at least one bin");
}

void
Histogram::add(double x)
{
    auto bin = static_cast<long>((x - lo) / width);
    bin = std::clamp<long>(bin, 0, static_cast<long>(counts.size()) - 1);
    ++counts[static_cast<std::size_t>(bin)];
    ++totalCount;
}

void
Histogram::addAll(const std::vector<double> &xs)
{
    for (double x : xs)
        add(x);
}

std::size_t
Histogram::count(std::size_t bin) const
{
    RHS_ASSERT(bin < counts.size());
    return counts[bin];
}

std::vector<double>
Histogram::normalized() const
{
    std::vector<double> out(counts.size(), 0.0);
    if (totalCount == 0)
        return out;
    for (std::size_t i = 0; i < counts.size(); ++i)
        out[i] = static_cast<double>(counts[i]) /
                 static_cast<double>(totalCount);
    return out;
}

double
Histogram::binCenter(std::size_t bin) const
{
    RHS_ASSERT(bin < counts.size());
    return lo + (static_cast<double>(bin) + 0.5) * width;
}

Histogram2d::Histogram2d(double x_lo, double x_hi, std::size_t x_bins,
                         double y_lo, double y_hi, std::size_t y_bins)
    : xLo(x_lo), xWidth((x_hi - x_lo) / static_cast<double>(x_bins)),
      yLo(y_lo), yWidth((y_hi - y_lo) / static_cast<double>(y_bins)),
      xBins(x_bins), yBins(y_bins), counts(x_bins * y_bins, 0)
{
    RHS_ASSERT(x_hi > x_lo && y_hi > y_lo, "2d histogram range empty");
    RHS_ASSERT(x_bins > 0 && y_bins > 0, "2d histogram needs bins");
}

void
Histogram2d::add(double x, double y)
{
    auto xb = static_cast<long>((x - xLo) / xWidth);
    auto yb = static_cast<long>((y - yLo) / yWidth);
    xb = std::clamp<long>(xb, 0, static_cast<long>(xBins) - 1);
    yb = std::clamp<long>(yb, 0, static_cast<long>(yBins) - 1);
    ++counts[index(static_cast<std::size_t>(xb),
                   static_cast<std::size_t>(yb))];
    ++totalCount;
}

std::size_t
Histogram2d::count(std::size_t x_bin, std::size_t y_bin) const
{
    return counts[index(x_bin, y_bin)];
}

double
Histogram2d::fraction(std::size_t x_bin, std::size_t y_bin) const
{
    if (totalCount == 0)
        return 0.0;
    return static_cast<double>(count(x_bin, y_bin)) /
           static_cast<double>(totalCount);
}

std::size_t
Histogram2d::index(std::size_t x_bin, std::size_t y_bin) const
{
    RHS_ASSERT(x_bin < xBins && y_bin < yBins);
    return y_bin * xBins + x_bin;
}

} // namespace rhs::stats

#include "stats/descriptive.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.hh"

namespace rhs::stats
{

double
mean(const std::vector<double> &xs)
{
    RHS_ASSERT(!xs.empty());
    return std::accumulate(xs.begin(), xs.end(), 0.0) /
           static_cast<double>(xs.size());
}

double
stddev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double m = mean(xs);
    double ss = 0.0;
    for (double x : xs)
        ss += (x - m) * (x - m);
    return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double
coefficientOfVariation(const std::vector<double> &xs)
{
    const double m = mean(xs);
    RHS_ASSERT(m != 0.0, "CV undefined for zero mean");
    return stddev(xs) / m;
}

double
quantile(std::vector<double> xs, double q)
{
    RHS_ASSERT(!xs.empty());
    RHS_ASSERT(q >= 0.0 && q <= 1.0, "quantile must be in [0,1], got ", q);
    std::sort(xs.begin(), xs.end());
    const double pos = q * static_cast<double>(xs.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const auto hi = std::min(lo + 1, xs.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double
median(const std::vector<double> &xs)
{
    return quantile(xs, 0.5);
}

double
minValue(const std::vector<double> &xs)
{
    RHS_ASSERT(!xs.empty());
    return *std::min_element(xs.begin(), xs.end());
}

double
maxValue(const std::vector<double> &xs)
{
    RHS_ASSERT(!xs.empty());
    return *std::max_element(xs.begin(), xs.end());
}

double
confidenceInterval95(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    return 1.96 * stddev(xs) / std::sqrt(static_cast<double>(xs.size()));
}

BoxSummary
boxSummary(const std::vector<double> &xs)
{
    RHS_ASSERT(!xs.empty());
    BoxSummary box;
    box.q1 = quantile(xs, 0.25);
    box.median = quantile(xs, 0.5);
    box.q3 = quantile(xs, 0.75);
    const double iqr = box.q3 - box.q1;
    const double lo_fence = box.q1 - 1.5 * iqr;
    const double hi_fence = box.q3 + 1.5 * iqr;

    box.whiskerLow = box.q1;
    box.whiskerHigh = box.q3;
    for (double x : xs) {
        if (x >= lo_fence && x < box.whiskerLow)
            box.whiskerLow = x;
        if (x <= hi_fence && x > box.whiskerHigh)
            box.whiskerHigh = x;
    }
    return box;
}

LetterValues
letterValues(const std::vector<double> &xs, std::size_t max_depth)
{
    RHS_ASSERT(!xs.empty());
    LetterValues lv;
    lv.median = median(xs);
    double tail = 0.25;
    for (std::size_t depth = 0; depth < max_depth; ++depth) {
        // Stop once a tail would contain fewer than two data points.
        if (tail * static_cast<double>(xs.size()) < 2.0)
            break;
        lv.boxes.emplace_back(quantile(xs, tail), quantile(xs, 1.0 - tail));
        tail /= 2.0;
    }
    return lv;
}

std::vector<double>
sortedDescending(std::vector<double> xs)
{
    std::sort(xs.begin(), xs.end(), std::greater<double>());
    return xs;
}

double
fractionPositive(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    const auto count = std::count_if(xs.begin(), xs.end(),
                                     [](double x) { return x > 0.0; });
    return static_cast<double>(count) / static_cast<double>(xs.size());
}

double
cumulativeMagnitude(const std::vector<double> &xs)
{
    double sum = 0.0;
    for (double x : xs)
        sum += std::abs(x);
    return sum;
}

} // namespace rhs::stats

/**
 * @file
 * Bhattacharyya distance between empirical distributions.
 *
 * Fig. 15 compares the HCfirst distributions of subarray pairs using the
 * Bhattacharyya distance, normalized to the self-distance of the first
 * subarray estimated over split halves of its own samples.
 */

#ifndef RHS_STATS_BHATTACHARYYA_HH
#define RHS_STATS_BHATTACHARYYA_HH

#include <cstddef>
#include <vector>

namespace rhs::stats
{

/**
 * Bhattacharyya coefficient between two sample sets, estimated on a
 * shared equal-width discretization spanning both supports.
 *
 * @param a First sample set. @pre !a.empty()
 * @param b Second sample set. @pre !b.empty()
 * @param bins Number of discretization bins.
 * @return BC in [0, 1]; 1 means identical discretized distributions.
 */
double bhattacharyyaCoefficient(const std::vector<double> &a,
                                const std::vector<double> &b,
                                std::size_t bins = 32);

/**
 * Bhattacharyya distance: -ln(BC), clamped to a large finite value
 * when the distributions have disjoint support.
 */
double bhattacharyyaDistance(const std::vector<double> &a,
                             const std::vector<double> &b,
                             std::size_t bins = 32);

/**
 * The paper's normalized distance BDnorm = BD(A, B) / BD(A, A), where
 * BD(A, A) is the self-distance estimated from interleaved halves of A
 * (the sampling noise floor). Values near 1.0 mean B is as close to A
 * as A is to itself.
 */
double bhattacharyyaNormalized(const std::vector<double> &a,
                               const std::vector<double> &b,
                               std::size_t bins = 32);

} // namespace rhs::stats

#endif // RHS_STATS_BHATTACHARYYA_HH

/**
 * @file
 * Ordinary least-squares linear regression with R² score.
 *
 * Fig. 14 fits "minimum HCfirst in a subarray" against "average HCfirst
 * in the subarray" per manufacturer and reports slope, intercept and
 * the coefficient of determination.
 */

#ifndef RHS_STATS_REGRESSION_HH
#define RHS_STATS_REGRESSION_HH

#include <vector>

namespace rhs::stats
{

/** Result of a simple y = slope * x + intercept least-squares fit. */
struct LinearFit
{
    double slope;
    double intercept;
    double r2; //!< Coefficient of determination in [0, 1].

    /** Predicted value at x. */
    double predict(double x) const { return slope * x + intercept; }
};

/**
 * Fit y against x by ordinary least squares.
 *
 * @pre xs.size() == ys.size() and xs.size() >= 2.
 * @return Slope, intercept, and R².
 */
LinearFit linearFit(const std::vector<double> &xs,
                    const std::vector<double> &ys);

} // namespace rhs::stats

#endif // RHS_STATS_REGRESSION_HH

#include "stats/bhattacharyya.hh"

#include <algorithm>
#include <cmath>

#include "stats/histogram.hh"
#include "util/logging.hh"

namespace rhs::stats
{

namespace
{

/** Shared-support histogram densities for both sample sets. */
std::pair<std::vector<double>, std::vector<double>>
sharedDensities(const std::vector<double> &a, const std::vector<double> &b,
                std::size_t bins)
{
    RHS_ASSERT(!a.empty() && !b.empty(),
               "Bhattacharyya needs non-empty samples");
    double lo = std::min(*std::min_element(a.begin(), a.end()),
                         *std::min_element(b.begin(), b.end()));
    double hi = std::max(*std::max_element(a.begin(), a.end()),
                         *std::max_element(b.begin(), b.end()));
    if (hi <= lo)
        hi = lo + 1.0; // All samples identical; one occupied bin.

    Histogram ha(lo, hi, bins), hb(lo, hi, bins);
    ha.addAll(a);
    hb.addAll(b);
    return {ha.normalized(), hb.normalized()};
}

double
coefficientFromDensities(const std::vector<double> &pa,
                         const std::vector<double> &pb)
{
    double bc = 0.0;
    for (std::size_t i = 0; i < pa.size(); ++i)
        bc += std::sqrt(pa[i] * pb[i]);
    return std::min(bc, 1.0);
}

} // namespace

double
bhattacharyyaCoefficient(const std::vector<double> &a,
                         const std::vector<double> &b, std::size_t bins)
{
    auto [pa, pb] = sharedDensities(a, b, bins);
    return coefficientFromDensities(pa, pb);
}

double
bhattacharyyaDistance(const std::vector<double> &a,
                      const std::vector<double> &b, std::size_t bins)
{
    const double bc = bhattacharyyaCoefficient(a, b, bins);
    // Disjoint supports give BC = 0; clamp to keep the result finite.
    constexpr double min_bc = 1e-12;
    return -std::log(std::max(bc, min_bc));
}

namespace
{

/** Sampling-noise floor: BD between interleaved halves of one set. */
double
selfDistance(const std::vector<double> &xs, std::size_t bins)
{
    std::vector<double> even, odd;
    even.reserve(xs.size() / 2 + 1);
    odd.reserve(xs.size() / 2 + 1);
    for (std::size_t i = 0; i < xs.size(); ++i)
        (i % 2 == 0 ? even : odd).push_back(xs[i]);
    if (even.empty() || odd.empty())
        return 0.0;
    return bhattacharyyaDistance(even, odd, bins);
}

} // namespace

double
bhattacharyyaNormalized(const std::vector<double> &a,
                        const std::vector<double> &b, std::size_t bins)
{
    // Average the self-distance floors of both inputs for stability
    // on small samples.
    const double self_bd =
        0.5 * (selfDistance(a, bins) + selfDistance(b, bins));
    const double cross_bd = bhattacharyyaDistance(a, b, bins);
    if (self_bd <= 0.0)
        return cross_bd <= 0.0 ? 1.0 : 0.0;
    // The paper defines BDnorm so that identical distributions map to
    // 1.0 and dissimilarity moves away from 1.0. We report the ratio of
    // self- to cross-distance: ~1.0 when B is as close to A as A's own
    // halves are, < 1.0 as distributions diverge.
    return std::min(self_bd / cross_bd, 1.1);
}

} // namespace rhs::stats

#include "stats/regression.hh"

#include <cmath>

#include "util/logging.hh"

namespace rhs::stats
{

LinearFit
linearFit(const std::vector<double> &xs, const std::vector<double> &ys)
{
    RHS_ASSERT(xs.size() == ys.size(), "mismatched regression inputs");
    RHS_ASSERT(xs.size() >= 2, "regression needs at least two points");

    const auto n = static_cast<double>(xs.size());
    double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        sx += xs[i];
        sy += ys[i];
        sxx += xs[i] * xs[i];
        sxy += xs[i] * ys[i];
    }

    const double denom = n * sxx - sx * sx;
    RHS_ASSERT(denom != 0.0, "degenerate regression: constant x");

    LinearFit fit;
    fit.slope = (n * sxy - sx * sy) / denom;
    fit.intercept = (sy - fit.slope * sx) / n;

    const double y_mean = sy / n;
    double ss_res = 0.0, ss_tot = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double resid = ys[i] - fit.predict(xs[i]);
        ss_res += resid * resid;
        ss_tot += (ys[i] - y_mean) * (ys[i] - y_mean);
    }
    fit.r2 = ss_tot == 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
    return fit;
}

} // namespace rhs::stats

/**
 * @file
 * Fixed-range histogram with normalized-density access.
 *
 * Used for Fig. 3 (2-D population of vulnerable temperature ranges),
 * Fig. 13 (2-D population of column vulnerability clusters), and as the
 * discretization underlying the Bhattacharyya distance of Fig. 15.
 */

#ifndef RHS_STATS_HISTOGRAM_HH
#define RHS_STATS_HISTOGRAM_HH

#include <cstddef>
#include <vector>

namespace rhs::stats
{

/** One-dimensional equal-width histogram over [lo, hi]. */
class Histogram
{
  public:
    /**
     * @param lo Lower bound of the covered range.
     * @param hi Upper bound of the covered range. @pre hi > lo
     * @param bins Number of equal-width bins. @pre bins > 0
     */
    Histogram(double lo, double hi, std::size_t bins);

    /** Add a sample; out-of-range samples clamp to the edge bins. */
    void add(double x);

    /** Add every sample of a vector. */
    void addAll(const std::vector<double> &xs);

    /** Raw count in a bin. */
    std::size_t count(std::size_t bin) const;

    /** Total number of samples added. */
    std::size_t total() const { return totalCount; }

    /** Number of bins. */
    std::size_t size() const { return counts.size(); }

    /** Probability mass per bin (sums to 1; empty histogram -> zeros). */
    std::vector<double> normalized() const;

    /** Center of a bin's covered interval. */
    double binCenter(std::size_t bin) const;

  private:
    double lo;
    double width;
    std::vector<std::size_t> counts;
    std::size_t totalCount = 0;
};

/**
 * Two-dimensional equal-width histogram; the Fig. 3 / Fig. 13 cluster
 * maps are instances of this with percentages per bucket.
 */
class Histogram2d
{
  public:
    Histogram2d(double x_lo, double x_hi, std::size_t x_bins,
                double y_lo, double y_hi, std::size_t y_bins);

    /** Add a sample; clamped to the covered rectangle. */
    void add(double x, double y);

    std::size_t count(std::size_t x_bin, std::size_t y_bin) const;
    std::size_t total() const { return totalCount; }
    std::size_t xSize() const { return xBins; }
    std::size_t ySize() const { return yBins; }

    /** Fraction of all samples in a bucket (0 when empty). */
    double fraction(std::size_t x_bin, std::size_t y_bin) const;

  private:
    std::size_t index(std::size_t x_bin, std::size_t y_bin) const;

    double xLo, xWidth;
    double yLo, yWidth;
    std::size_t xBins, yBins;
    std::vector<std::size_t> counts;
    std::size_t totalCount = 0;
};

} // namespace rhs::stats

#endif // RHS_STATS_HISTOGRAM_HH

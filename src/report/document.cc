#include "report/document.hh"

#include "util/version.hh"

namespace rhs::report
{

Document::Document() : git(util::gitDescribe()) {}

void
Document::addSeries(const std::string &name,
                    const std::vector<double> &values)
{
    series.push_back({name, {}, values});
}

void
Document::addSeries(const std::string &name,
                    const std::vector<std::string> &labels,
                    const std::vector<double> &values)
{
    series.push_back({name, labels, values});
}

bool
Document::check(const std::string &id, const std::string &reference,
                const std::string &description, bool pass,
                const std::string &observed)
{
    checks.push_back({id, description, reference, pass, observed});
    return pass;
}

bool
Document::allChecksPass() const
{
    for (const auto &entry : checks)
        if (!entry.pass)
            return false;
    return true;
}

Json
Document::toJson() const
{
    Json doc = Json::object();
    doc.set("schema", kSchema);
    doc.set("experiment", experiment);
    doc.set("title", title);
    doc.set("source", source);
    doc.set("git", git);

    Json scale = Json::object();
    scale.set("modules_per_mfr", modulesPerMfr);
    scale.set("max_rows", maxRows);
    scale.set("rows_per_region", rowsPerRegion);
    scale.set("smoke", smoke);
    doc.set("scale", std::move(scale));

    doc.set("seed", seed);
    doc.set("jobs", jobs);
    doc.set("wall_seconds", wallSeconds);

    Json series_json = Json::array();
    for (const auto &entry : series) {
        Json one = Json::object();
        one.set("name", entry.name);
        if (!entry.labels.empty()) {
            Json labels = Json::array();
            for (const auto &label : entry.labels)
                labels.push(label);
            one.set("labels", std::move(labels));
        }
        Json values = Json::array();
        for (double value : entry.values)
            values.push(value);
        one.set("values", std::move(values));
        series_json.push(std::move(one));
    }
    doc.set("series", std::move(series_json));

    doc.set("data", data);

    Json checks_json = Json::array();
    for (const auto &entry : checks) {
        Json one = Json::object();
        one.set("id", entry.id);
        one.set("reference", entry.reference);
        one.set("description", entry.description);
        one.set("pass", entry.pass);
        if (!entry.observed.empty())
            one.set("observed", entry.observed);
        checks_json.push(std::move(one));
    }
    doc.set("checks", std::move(checks_json));
    return doc;
}

namespace
{

bool
requireMember(const Json &doc, const char *name, Json::Type type,
              std::string &error)
{
    const Json *member = doc.find(name);
    if (!member) {
        error = std::string("missing member \"") + name + "\"";
        return false;
    }
    if (member->type() != type &&
        !(type == Json::Type::Double && member->isNumber())) {
        error = std::string("member \"") + name + "\" has wrong type";
        return false;
    }
    return true;
}

} // namespace

bool
Document::validate(const Json &doc, std::string &error)
{
    if (doc.type() != Json::Type::Object) {
        error = "document is not an object";
        return false;
    }
    if (!requireMember(doc, "schema", Json::Type::String, error))
        return false;
    if (doc.at("schema").asString() != kSchema) {
        error = "unknown schema \"" + doc.at("schema").asString() +
                "\" (expected " + kSchema + ")";
        return false;
    }
    for (const char *name : {"experiment", "title", "source", "git"})
        if (!requireMember(doc, name, Json::Type::String, error))
            return false;
    if (doc.at("experiment").asString().empty()) {
        error = "empty experiment id";
        return false;
    }
    if (!requireMember(doc, "scale", Json::Type::Object, error))
        return false;
    const Json &scale = doc.at("scale");
    for (const char *name :
         {"modules_per_mfr", "max_rows", "rows_per_region"})
        if (!requireMember(scale, name, Json::Type::Int, error))
            return false;
    if (!requireMember(scale, "smoke", Json::Type::Bool, error))
        return false;
    for (const char *name : {"seed", "jobs"})
        if (!requireMember(doc, name, Json::Type::Int, error))
            return false;
    if (!requireMember(doc, "wall_seconds", Json::Type::Double, error))
        return false;

    if (!requireMember(doc, "series", Json::Type::Array, error))
        return false;
    const Json &series = doc.at("series");
    for (std::size_t i = 0; i < series.size(); ++i) {
        const Json &entry = series.at(i);
        if (!requireMember(entry, "name", Json::Type::String, error) ||
            !requireMember(entry, "values", Json::Type::Array, error))
            return false;
        const Json &values = entry.at("values");
        for (std::size_t j = 0; j < values.size(); ++j) {
            if (!values.at(j).isNumber()) {
                error = "series \"" + entry.at("name").asString() +
                        "\" holds a non-numeric value";
                return false;
            }
        }
        if (const Json *labels = entry.find("labels")) {
            if (labels->type() != Json::Type::Array ||
                labels->size() != values.size()) {
                error = "series \"" + entry.at("name").asString() +
                        "\" labels do not match values";
                return false;
            }
        }
    }

    if (!requireMember(doc, "data", Json::Type::Object, error))
        return false;

    if (!requireMember(doc, "checks", Json::Type::Array, error))
        return false;
    const Json &checks = doc.at("checks");
    if (checks.size() == 0) {
        error = "document carries no paper-expectation checks";
        return false;
    }
    for (std::size_t i = 0; i < checks.size(); ++i) {
        const Json &entry = checks.at(i);
        if (!requireMember(entry, "id", Json::Type::String, error) ||
            !requireMember(entry, "reference", Json::Type::String,
                           error) ||
            !requireMember(entry, "description", Json::Type::String,
                           error) ||
            !requireMember(entry, "pass", Json::Type::Bool, error))
            return false;
    }
    return true;
}

} // namespace rhs::report

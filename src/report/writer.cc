#include "report/writer.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/logging.hh"

namespace rhs::report
{

std::string
JsonWriter::escape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (unsigned char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
              if (c < 0x20) {
                  char buffer[8];
                  std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
                  out += buffer;
              } else {
                  out += static_cast<char>(c);
              }
        }
    }
    return out;
}

void
JsonWriter::writeValue(std::ostream &out, const Json &value,
                       unsigned depth) const
{
    const std::string indent(2 * depth, ' ');
    const std::string inner(2 * (depth + 1), ' ');
    switch (value.type()) {
      case Json::Type::Null:
        out << "null";
        break;
      case Json::Type::Bool:
        out << (value.asBool() ? "true" : "false");
        break;
      case Json::Type::Int:
        out << value.asInt();
        break;
      case Json::Type::Double:
        out << formatDouble(value.asDouble());
        break;
      case Json::Type::String:
        out << '"' << escape(value.asString()) << '"';
        break;
      case Json::Type::Array: {
          if (value.size() == 0) {
              out << "[]";
              break;
          }
          // Scalar-only arrays (data series) stay on one line.
          bool flat = true;
          for (std::size_t i = 0; i < value.size(); ++i) {
              const auto type = value.at(i).type();
              if (type == Json::Type::Array ||
                  type == Json::Type::Object)
                  flat = false;
          }
          if (flat) {
              out << '[';
              for (std::size_t i = 0; i < value.size(); ++i) {
                  if (i)
                      out << ", ";
                  writeValue(out, value.at(i), 0);
              }
              out << ']';
              break;
          }
          out << "[\n";
          for (std::size_t i = 0; i < value.size(); ++i) {
              out << inner;
              writeValue(out, value.at(i), depth + 1);
              out << (i + 1 < value.size() ? ",\n" : "\n");
          }
          out << indent << ']';
          break;
      }
      case Json::Type::Object: {
          if (value.size() == 0) {
              out << "{}";
              break;
          }
          out << "{\n";
          const auto &members = value.members();
          for (std::size_t i = 0; i < members.size(); ++i) {
              out << inner << '"' << escape(members[i].first)
                  << "\": ";
              writeValue(out, members[i].second, depth + 1);
              out << (i + 1 < members.size() ? ",\n" : "\n");
          }
          out << indent << '}';
          break;
      }
    }
}

void
JsonWriter::write(std::ostream &out, const Json &value) const
{
    writeValue(out, value, 0);
}

std::string
JsonWriter::toString(const Json &value) const
{
    std::ostringstream out;
    write(out, value);
    return out.str();
}

void
JsonWriter::writeFile(const std::string &path, const Json &value) const
{
    // Create missing parent directories ("--out nested/dir/x.json" is
    // a user convenience, not an error); a failure here falls through
    // to the open error below with the precise path.
    const auto parent = std::filesystem::path(path).parent_path();
    if (!parent.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(parent, ec);
    }
    std::ofstream out(path);
    if (!out.good())
        RHS_FATAL("cannot open JSON output file: ", path);
    write(out, value);
    out << '\n';
    out.flush();
    if (!out.good())
        RHS_FATAL("failed writing JSON output file: ", path);
}

} // namespace rhs::report

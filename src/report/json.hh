/**
 * @file
 * Minimal JSON document model shared by every result emitter.
 *
 * A `Json` value is a tagged union of null, bool, integer, double,
 * string, array, and object. Objects preserve insertion order so
 * emitted documents are stable and diffable across runs. Serialization
 * lives in writer.hh; `Json::parse` is the inverse and is used by the
 * round-trip tests and by `rhs-bench --check` to prove every emitted
 * document is well formed.
 *
 * Number formatting is part of the contract: doubles are written with
 * `std::to_chars` (shortest form that round-trips exactly), integers
 * as plain decimal, so a parse-then-write cycle reproduces the value
 * bit for bit.
 */

#ifndef RHS_REPORT_JSON_HH
#define RHS_REPORT_JSON_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace rhs::report
{

/** One JSON value; composite values own their children. */
class Json
{
  public:
    enum class Type { Null, Bool, Int, Double, String, Array, Object };

    Json() : type_(Type::Null) {}
    Json(bool value) : type_(Type::Bool), bool_(value) {}
    Json(std::int64_t value) : type_(Type::Int), int_(value) {}
    Json(int value) : Json(static_cast<std::int64_t>(value)) {}
    Json(unsigned value) : Json(static_cast<std::int64_t>(value)) {}
    Json(std::uint64_t value)
        : Json(static_cast<std::int64_t>(value)) {}
    Json(double value) : type_(Type::Double), double_(value) {}
    Json(std::string value)
        : type_(Type::String), string_(std::move(value)) {}
    Json(const char *value) : Json(std::string(value)) {}

    /** An empty array value. */
    static Json array();
    /** An empty object value. */
    static Json object();

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isNumber() const
    {
        return type_ == Type::Int || type_ == Type::Double;
    }

    /** Typed accessors; panic when the type does not match. */
    bool asBool() const;
    std::int64_t asInt() const;
    /** Numeric value of an Int or Double node. */
    double asDouble() const;
    const std::string &asString() const;

    // --- Array interface ----------------------------------------------
    /** Append to an array (converts a fresh null to an array). */
    Json &push(Json value);
    std::size_t size() const;
    const Json &at(std::size_t index) const;

    // --- Object interface ---------------------------------------------
    /** Set a member, preserving first-insertion order. */
    Json &set(const std::string &key, Json value);
    bool contains(const std::string &key) const;
    /** Member lookup; panics when absent. */
    const Json &at(const std::string &key) const;
    /** Member lookup; nullptr when absent. */
    const Json *find(const std::string &key) const;
    const std::vector<std::pair<std::string, Json>> &members() const;

    /**
     * Parse a complete JSON text.
     *
     * @param text The document.
     * @param error Filled with a message on failure.
     * @return The parsed value, or nullopt-like null with error set.
     */
    static bool parse(const std::string &text, Json &out,
                      std::string &error);

    bool operator==(const Json &other) const;

  private:
    Type type_;
    bool bool_ = false;
    std::int64_t int_ = 0;
    double double_ = 0.0;
    std::string string_;
    std::vector<Json> array_;
    std::vector<std::pair<std::string, Json>> object_;
};

/** Format a double exactly as the writer emits it. */
std::string formatDouble(double value);

} // namespace rhs::report

#endif // RHS_REPORT_JSON_HH

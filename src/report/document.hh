/**
 * @file
 * The versioned result schema every experiment emits.
 *
 * A Document is the machine-readable counterpart of one figure/table
 * reproduction: identity (experiment id, title, paper source), run
 * provenance (git describe, scale, seed, jobs, wall time), named data
 * series, a free-form experiment-specific payload, and the list of
 * paper-expectation checks — the executable form of the paper's
 * observations, each carrying its observation/figure reference and a
 * pass/fail verdict CI can gate on.
 *
 * Schema versioning: `kSchema` names the envelope revision. Consumers
 * must reject documents whose schema string they do not know.
 */

#ifndef RHS_REPORT_DOCUMENT_HH
#define RHS_REPORT_DOCUMENT_HH

#include <string>
#include <vector>

#include "report/json.hh"

namespace rhs::report
{

/** Envelope revision emitted in every document's "schema" member. */
inline constexpr const char *kSchema = "rhs-report/1";

/** One named data series of a figure (labels optional). */
struct Series
{
    std::string name;
    std::vector<std::string> labels; //!< Optional per-point labels.
    std::vector<double> values;
};

/** One executable paper expectation. */
struct Check
{
    std::string id;          //!< Stable machine name, e.g. "obsv4_sign".
    std::string description; //!< What the paper expects.
    std::string reference;   //!< Observation/figure, e.g. "Obsv. 4 / Fig. 4".
    bool pass = false;
    std::string observed;    //!< What this run measured (free text).
};

/** One experiment's structured result. */
class Document
{
  public:
    // Identity (filled by the experiment or the driver).
    std::string experiment;
    std::string title;
    std::string source;

    // Provenance. `git` defaults to the build's configure-time
    // `git describe` (util::gitDescribe()), so documents written by
    // an experiment itself — not just by the driver — carry it too.
    std::string git;
    unsigned modulesPerMfr = 0;
    unsigned maxRows = 0;
    unsigned rowsPerRegion = 0;
    unsigned jobs = 0;
    unsigned seed = 0;
    bool smoke = false;
    double wallSeconds = 0.0;

    std::vector<Series> series;
    Json data = Json::object(); //!< Experiment-specific payload.
    std::vector<Check> checks;

    Document();

    /** Append a series with values only. */
    void addSeries(const std::string &name,
                   const std::vector<double> &values);

    /** Append a labelled series. */
    void addSeries(const std::string &name,
                   const std::vector<std::string> &labels,
                   const std::vector<double> &values);

    /** Record one expectation check and return its verdict. */
    bool check(const std::string &id, const std::string &reference,
               const std::string &description, bool pass,
               const std::string &observed = "");

    /** True when every recorded check passed. */
    bool allChecksPass() const;

    /** Serialize the full envelope. */
    Json toJson() const;

    /**
     * Validate a parsed document against the envelope schema:
     * schema string, required members, member types, at least one
     * check, and well-formed series/check entries.
     *
     * @param value The parsed document.
     * @param error Filled with the first violation found.
     */
    static bool validate(const Json &value, std::string &error);
};

} // namespace rhs::report

#endif // RHS_REPORT_DOCUMENT_HH

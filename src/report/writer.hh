/**
 * @file
 * Serializer for report::Json values.
 *
 * One writer, used by every emitter, so all machine-readable output of
 * the project shares escaping and number-formatting behavior. Output
 * is pretty-printed with two-space indentation and a trailing newline,
 * matching the style of the original hand-rolled BENCH_*.json files.
 */

#ifndef RHS_REPORT_WRITER_HH
#define RHS_REPORT_WRITER_HH

#include <iosfwd>
#include <string>

#include "report/json.hh"

namespace rhs::report
{

/** Writes Json values to streams, strings, and files. */
class JsonWriter
{
  public:
    /** Serialize to a stream (no trailing newline). */
    void write(std::ostream &out, const Json &value) const;

    /** Serialize to a string (no trailing newline). */
    std::string toString(const Json &value) const;

    /**
     * Serialize to a file with a trailing newline, creating missing
     * parent directories. RHS_FATAL when the file cannot be written.
     */
    void writeFile(const std::string &path, const Json &value) const;

    /** Escape a string's contents (no surrounding quotes). */
    static std::string escape(const std::string &text);

  private:
    void writeValue(std::ostream &out, const Json &value,
                    unsigned depth) const;
};

} // namespace rhs::report

#endif // RHS_REPORT_WRITER_HH

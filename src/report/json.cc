#include "report/json.hh"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdlib>

#include "util/logging.hh"

namespace rhs::report
{

Json
Json::array()
{
    Json value;
    value.type_ = Type::Array;
    return value;
}

Json
Json::object()
{
    Json value;
    value.type_ = Type::Object;
    return value;
}

bool
Json::asBool() const
{
    RHS_ASSERT(type_ == Type::Bool, "JSON value is not a bool");
    return bool_;
}

std::int64_t
Json::asInt() const
{
    RHS_ASSERT(type_ == Type::Int, "JSON value is not an integer");
    return int_;
}

double
Json::asDouble() const
{
    RHS_ASSERT(isNumber(), "JSON value is not a number");
    return type_ == Type::Int ? static_cast<double>(int_) : double_;
}

const std::string &
Json::asString() const
{
    RHS_ASSERT(type_ == Type::String, "JSON value is not a string");
    return string_;
}

Json &
Json::push(Json value)
{
    if (type_ == Type::Null)
        type_ = Type::Array;
    RHS_ASSERT(type_ == Type::Array, "push on a non-array JSON value");
    array_.push_back(std::move(value));
    return *this;
}

std::size_t
Json::size() const
{
    if (type_ == Type::Array)
        return array_.size();
    if (type_ == Type::Object)
        return object_.size();
    RHS_PANIC("size of a non-composite JSON value");
}

const Json &
Json::at(std::size_t index) const
{
    RHS_ASSERT(type_ == Type::Array, "index into a non-array");
    RHS_ASSERT(index < array_.size(), "JSON array index out of range");
    return array_[index];
}

Json &
Json::set(const std::string &key, Json value)
{
    if (type_ == Type::Null)
        type_ = Type::Object;
    RHS_ASSERT(type_ == Type::Object, "set on a non-object JSON value");
    for (auto &member : object_) {
        if (member.first == key) {
            member.second = std::move(value);
            return *this;
        }
    }
    object_.emplace_back(key, std::move(value));
    return *this;
}

bool
Json::contains(const std::string &key) const
{
    return find(key) != nullptr;
}

const Json &
Json::at(const std::string &key) const
{
    const Json *value = find(key);
    RHS_ASSERT(value, "missing JSON member: ", key);
    return *value;
}

const Json *
Json::find(const std::string &key) const
{
    if (type_ != Type::Object)
        return nullptr;
    for (const auto &member : object_)
        if (member.first == key)
            return &member.second;
    return nullptr;
}

const std::vector<std::pair<std::string, Json>> &
Json::members() const
{
    RHS_ASSERT(type_ == Type::Object, "members of a non-object");
    return object_;
}

bool
Json::operator==(const Json &other) const
{
    if (type_ != other.type_)
        return false;
    switch (type_) {
      case Type::Null:
        return true;
      case Type::Bool:
        return bool_ == other.bool_;
      case Type::Int:
        return int_ == other.int_;
      case Type::Double:
        return double_ == other.double_ ||
               (std::isnan(double_) && std::isnan(other.double_));
      case Type::String:
        return string_ == other.string_;
      case Type::Array:
        return array_ == other.array_;
      case Type::Object:
        return object_ == other.object_;
    }
    return false;
}

std::string
formatDouble(double value)
{
    // Non-finite values have no JSON representation; emit null-safe
    // sentinels rather than invalid tokens.
    if (std::isnan(value))
        return "null";
    if (std::isinf(value))
        return value > 0 ? "1e999" : "-1e999";
    char buffer[32];
    const auto result =
        std::to_chars(buffer, buffer + sizeof(buffer), value);
    RHS_ASSERT(result.ec == std::errc(), "double formatting failed");
    std::string text(buffer, result.ptr);
    // Keep doubles distinguishable from integers on re-parse.
    if (text.find('.') == std::string::npos &&
        text.find('e') == std::string::npos &&
        text.find("inf") == std::string::npos)
        text += ".0";
    return text;
}

namespace
{

/** Recursive-descent parser over a complete text. */
class Parser
{
  public:
    Parser(const std::string &text) : text_(text) {}

    bool
    run(Json &out, std::string &error)
    {
        if (!parseValue(out, error))
            return false;
        skipSpace();
        if (pos_ != text_.size()) {
            error = fail("trailing bytes after the document");
            return false;
        }
        return true;
    }

  private:
    std::string
    fail(const std::string &what) const
    {
        return what + " at offset " + std::to_string(pos_);
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::string(word).size();
        if (text_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool
    parseValue(Json &out, std::string &error)
    {
        skipSpace();
        if (pos_ >= text_.size()) {
            error = fail("unexpected end of document");
            return false;
        }
        const char c = text_[pos_];
        if (c == '{')
            return parseObject(out, error);
        if (c == '[')
            return parseArray(out, error);
        if (c == '"') {
            std::string value;
            if (!parseString(value, error))
                return false;
            out = Json(std::move(value));
            return true;
        }
        if (literal("true")) {
            out = Json(true);
            return true;
        }
        if (literal("false")) {
            out = Json(false);
            return true;
        }
        if (literal("null")) {
            out = Json();
            return true;
        }
        return parseNumber(out, error);
    }

    bool
    parseNumber(Json &out, std::string &error)
    {
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E'))
            ++pos_;
        const std::string token = text_.substr(start, pos_ - start);
        if (token.empty()) {
            error = fail("expected a value");
            return false;
        }
        if (token.find('.') == std::string::npos &&
            token.find('e') == std::string::npos &&
            token.find('E') == std::string::npos) {
            std::int64_t value = 0;
            const auto result = std::from_chars(
                token.data(), token.data() + token.size(), value);
            if (result.ec != std::errc() ||
                result.ptr != token.data() + token.size()) {
                error = fail("malformed integer '" + token + "'");
                return false;
            }
            out = Json(value);
            return true;
        }
        char *end = nullptr;
        const double value = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size()) {
            error = fail("malformed number '" + token + "'");
            return false;
        }
        out = Json(value);
        return true;
    }

    bool
    parseString(std::string &out, std::string &error)
    {
        ++pos_; // Opening quote.
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20) {
                error = fail("raw control character in string");
                return false;
            }
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                break;
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                  if (pos_ + 4 > text_.size()) {
                      error = fail("truncated \\u escape");
                      return false;
                  }
                  unsigned code = 0;
                  const auto result = std::from_chars(
                      text_.data() + pos_, text_.data() + pos_ + 4,
                      code, 16);
                  if (result.ec != std::errc() ||
                      result.ptr != text_.data() + pos_ + 4) {
                      error = fail("malformed \\u escape");
                      return false;
                  }
                  pos_ += 4;
                  // The writer only emits \u00XX for control bytes;
                  // decode the BMP code point as UTF-8.
                  if (code < 0x80) {
                      out += static_cast<char>(code);
                  } else if (code < 0x800) {
                      out += static_cast<char>(0xC0 | (code >> 6));
                      out += static_cast<char>(0x80 | (code & 0x3F));
                  } else {
                      out += static_cast<char>(0xE0 | (code >> 12));
                      out += static_cast<char>(
                          0x80 | ((code >> 6) & 0x3F));
                      out += static_cast<char>(0x80 | (code & 0x3F));
                  }
                  break;
              }
              default:
                  error = fail("unknown escape");
                  return false;
            }
        }
        error = fail("unterminated string");
        return false;
    }

    bool
    parseArray(Json &out, std::string &error)
    {
        ++pos_; // '['.
        out = Json::array();
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            Json element;
            if (!parseValue(element, error))
                return false;
            out.push(std::move(element));
            skipSpace();
            if (pos_ >= text_.size()) {
                error = fail("unterminated array");
                return false;
            }
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            error = fail("expected ',' or ']'");
            return false;
        }
    }

    bool
    parseObject(Json &out, std::string &error)
    {
        ++pos_; // '{'.
        out = Json::object();
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_] != '"') {
                error = fail("expected a member name");
                return false;
            }
            std::string key;
            if (!parseString(key, error))
                return false;
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_] != ':') {
                error = fail("expected ':'");
                return false;
            }
            ++pos_;
            Json value;
            if (!parseValue(value, error))
                return false;
            out.set(key, std::move(value));
            skipSpace();
            if (pos_ >= text_.size()) {
                error = fail("unterminated object");
                return false;
            }
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            error = fail("expected ',' or '}'");
            return false;
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

bool
Json::parse(const std::string &text, Json &out, std::string &error)
{
    return Parser(text).run(out, error);
}

} // namespace rhs::report
